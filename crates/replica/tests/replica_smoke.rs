//! Crate-level smoke: the replicated runner's determinism contract.

use indra_fleet::{ChaosConfig, FleetConfig};
use indra_replica::{run_fleet_replicated, ReplicaOptions};

fn tiny() -> FleetConfig {
    FleetConfig { shards: 2, requests_per_shard: 6, ..FleetConfig::quick() }
}

#[test]
fn clean_stats_are_identical_across_k() {
    let cfg = tiny();
    let base = run_fleet_replicated(
        &cfg,
        &ReplicaOptions { replicas: 1, rejuvenate_every: None, chaos: ChaosConfig::off() },
    )
    .expect("k=1 run");
    for k in 2..=3 {
        let rep = run_fleet_replicated(
            &cfg,
            &ReplicaOptions { replicas: k, rejuvenate_every: None, chaos: ChaosConfig::off() },
        )
        .expect("replicated run");
        assert_eq!(rep.stats.to_json(), base.stats.to_json(), "k={k} diverged from k=1");
        let sup = rep.supervision.expect("replicated runs report supervision");
        assert_eq!(sup.divergences, 0, "clean k={k} run must not diverge");
    }
}

#[test]
fn stealth_is_caught_and_masked_at_k3_and_stats_match_clean() {
    let cfg = tiny();
    let clean = run_fleet_replicated(
        &cfg,
        &ReplicaOptions { replicas: 3, rejuvenate_every: None, chaos: ChaosConfig::off() },
    )
    .expect("clean run");
    let hit = run_fleet_replicated(
        &cfg,
        &ReplicaOptions {
            replicas: 3,
            rejuvenate_every: None,
            chaos: ChaosConfig::profile("stealth").expect("profile"),
        },
    )
    .expect("stealth run");
    let sup = hit.supervision.expect("supervision");
    assert!(sup.divergences >= 1, "voting must catch the silent corruption");
    assert!(sup.divergent_masked >= 1, "k=3 masks the divergent replica");
    assert_eq!(
        hit.stats.to_json(),
        clean.stats.to_json(),
        "masking must leave deterministic stats byte-identical"
    );
}

#[test]
fn rejuvenation_fires_and_preserves_stats() {
    let cfg = tiny();
    let base = run_fleet_replicated(
        &cfg,
        &ReplicaOptions { replicas: 2, rejuvenate_every: None, chaos: ChaosConfig::off() },
    )
    .expect("base run");
    let rej = run_fleet_replicated(
        &cfg,
        &ReplicaOptions { replicas: 2, rejuvenate_every: Some(3), chaos: ChaosConfig::off() },
    )
    .expect("rejuvenated run");
    let sup = rej.supervision.expect("supervision");
    assert!(sup.rejuvenations >= 2, "cadence 3 over 6 requests must fire");
    assert_eq!(rej.stats.to_json(), base.stats.to_json(), "rejuvenation is stats-neutral");
}
