#![warn(missing_docs)]
//! # indra-rng — deterministic pseudo-randomness without dependencies
//!
//! The evaluation needs reproducible randomness in three places: traffic
//! scripts (client request mixes), property tests (random programs,
//! access traces, scheme interleavings) and the fleet executor's
//! per-shard seed derivation. The container build runs fully offline, so
//! this crate supplies the little that `rand`/`proptest` were used for:
//!
//! * [`Rng`] — a SplitMix64-seeded xoshiro256** generator. Small, fast,
//!   passes BigCrush, and — the property we actually rely on — produces
//!   an identical stream for an identical seed on every platform.
//! * [`derive_seed`] — stable per-shard substream derivation, so a fleet
//!   run's shard `i` sees the same traffic no matter how many threads
//!   execute the fleet.
//! * [`forall`] — a minimal property-test loop: `cases` random trials,
//!   each from a seed derived from a test-name hash, with the failing
//!   case's seed reported on panic so it can be replayed.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// SplitMix64 step — used for seeding and seed derivation.
#[must_use]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a statistically independent seed for substream `index` of
/// `master` (per-shard traffic, per-case property tests).
#[must_use]
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut s = master ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(index.wrapping_add(1));
    let a = splitmix64(&mut s);
    splitmix64(&mut s) ^ a.rotate_left(17)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64 (the
    /// construction xoshiro's authors recommend).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// The raw 256-bit generator state, for durable checkpointing.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from state captured by [`Rng::state`],
    /// continuing the stream exactly where it left off.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Rng {
        Rng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random byte.
    pub fn gen_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniformly random `u16`.
    pub fn gen_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// A fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num`/`den` (integer ratios keep the
    /// determinism contract trivially auditable).
    ///
    /// # Panics
    ///
    /// Panics when `den` is zero.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0, "ratio denominator must be positive");
        self.range_u32(0, den) < num
    }

    /// Uniform in `[lo, hi)` (debiased via rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        if span.is_power_of_two() {
            return lo + (self.next_u64() & (span - 1));
        }
        // Rejection sampling over the largest multiple of `span`.
        let zone = u64::MAX - (u64::MAX % span) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform in `[lo, hi)`.
    #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss)]
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i64 - lo as i64) as u64;
        (i64::from(lo) + self.range_u64(0, span) as i64) as i32
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.range_usize(0, items.len())]
    }

    /// Splits off an independent generator (seeded from this stream).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// FNV-1a — a stable hash for deriving a test's base seed from its name.
#[must_use]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `cases` random trials of a property. Each case gets an [`Rng`]
/// seeded deterministically from `name` and the case index; a failing
/// case panics with its seed so `replay` can reproduce it in isolation.
pub fn forall(name: &str, cases: u32, mut property: impl FnMut(&mut Rng)) {
    let base = fnv1a(name.as_bytes());
    for case in 0..cases {
        let seed = derive_seed(base, u64::from(case));
        let mut rng = Rng::seed_from_u64(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("property `{name}` failed on case {case} (seed {seed:#018x})");
            resume_unwind(payload);
        }
    }
}

/// Replays one `forall` case by seed (debugging aid).
pub fn replay(seed: u64, property: impl FnOnce(&mut Rng)) {
    let mut rng = Rng::seed_from_u64(seed);
    property(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = Rng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.range_u32(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
            let i = rng.range_i32(-8, -3);
            assert!((-8..-3).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all 10 values must appear in 1000 draws");
    }

    #[test]
    fn derive_seed_distinguishes_shards() {
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(0xDEAD_BEEF, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "shard seeds must not collide");
    }

    #[test]
    fn ratio_is_roughly_calibrated() {
        let mut rng = Rng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.ratio(1, 4)).count();
        assert!((2200..2800).contains(&hits), "1/4 ratio gave {hits}/10000");
    }

    #[test]
    fn forall_reports_failing_seed() {
        let result = std::panic::catch_unwind(|| {
            forall("always_fails", 3, |_rng| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn pick_and_fork() {
        let mut rng = Rng::seed_from_u64(9);
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
        let mut f1 = rng.clone().fork();
        let mut f2 = rng.fork();
        assert_eq!(f1.next_u64(), f2.next_u64(), "fork is deterministic");
    }
}
