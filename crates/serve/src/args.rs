//! Command-line parsing for the `fleetd` and `loadgen` binaries
//! (logic here, thin wrappers in the root package — same split as
//! `fleetbench`). Unknown or malformed flags produce a usage-bearing
//! error string; the wrappers exit nonzero on it.

use std::path::PathBuf;

use indra_workloads::ServiceApp;

use crate::daemon::ServeConfig;

/// Parsed `fleetd` command line.
#[derive(Debug, Clone)]
pub struct FleetdArgs {
    /// Daemon configuration (ignored in replay mode except for paths).
    pub serve: ServeConfig,
    /// Replay mode: reproduce the stats of this state directory and
    /// exit (no socket, no writes).
    pub replay: Option<PathBuf>,
    /// Where to write the final deterministic stats JSON (defaults to
    /// `<state>/FLEET_stats.json` when serving, stdout-only when
    /// replaying).
    pub out: Option<PathBuf>,
    /// Smoke-test shape: fewer shards at a deeper work-scale cut.
    pub quick: bool,
}

/// `fleetd --help` text.
pub const FLEETD_USAGE: &str = "\
fleetd — INDRA fleet service daemon (length-prefixed binary protocol on
loopback TCP, deterministic record/replay)

USAGE: fleetd --state DIR [--port N] [--shards N] [--app NAME]
              [--scale N] [--queue-depth N] [--checkpoint-every N]
              [--seed N] [--replicas K] [--rejuvenate-every N]
              [--no-superblocks] [--no-compartments] [--out PATH]
              [--quick]
       fleetd --replay DIR [--out PATH]

--no-superblocks disables the host-side superblock execution engine
(hot basic blocks batched into pre-validated micro-op traces); the
simulated stats are byte-identical either way. Persisted to
`serve.meta`, so a resumed or replayed run keeps the setting.

--no-compartments disables per-request compartments (fine-grained
rewind-and-discard of only the guilty request's pages and heap arena
on detection). Attack-free stats are byte-identical either way; under
attack, compartments retry benign requests instead of losing them.
Persisted to `serve.meta` like the other sim knobs.

Replication: --replicas K (1-3, default 1) shadows every shard's
authoritative primary with K-1 voting followers fed the identical
admitted stream; a follower whose (disposition, state digest) diverges
is masked and rebuilt from the durable checkpoint + ingress history.
--rejuvenate-every N proactively rebuilds one follower per shard every
N admitted requests, round-robin. HEALTH reports the divergence and
rejuvenation counters. Replay output is byte-identical whatever K is.

Serving: binds 127.0.0.1:<port> (0 = ephemeral; the chosen address is
printed as `fleetd listening on ADDR`), spawns one worker per shard and
serves until SIGINT/SIGTERM or a SHUTDOWN frame, then drains, writes a
final checkpoint per shard and dumps the deterministic fleet stats to
--out (default <state>/FLEET_stats.json). A --state directory from an
earlier run (even one killed with SIGKILL) is resumed: `serve.meta` is
authoritative for the sim knobs and every shard recovers checkpoint +
ingress log.

Replay: --replay re-runs DIR's per-shard ingress logs from scratch,
read-only, and prints stats JSON byte-identical to the live run's.";

/// Parses the `fleetd` command line.
///
/// # Errors
///
/// A usage-bearing message on unknown options or unparsable values.
pub fn parse_fleetd_args(args: impl Iterator<Item = String>) -> Result<FleetdArgs, String> {
    fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
        args.next().ok_or_else(|| format!("{flag} needs a value\n{FLEETD_USAGE}"))
    }
    let mut out =
        FleetdArgs { serve: ServeConfig::default(), replay: None, out: None, quick: false };
    let mut state: Option<PathBuf> = None;
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--state" => state = Some(PathBuf::from(value(&mut args, "--state")?)),
            "--port" => {
                out.serve.port =
                    value(&mut args, "--port")?.parse().map_err(|e| format!("--port: {e}"))?;
            }
            "--shards" => {
                out.serve.shards =
                    value(&mut args, "--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
                if out.serve.shards == 0 {
                    return Err("--shards needs a positive count".into());
                }
            }
            "--app" => {
                let name = value(&mut args, "--app")?;
                out.serve.engine.app = app_by_name(&name)
                    .ok_or_else(|| format!("--app: unknown service {name:?}\n{FLEETD_USAGE}"))?;
            }
            "--scale" => {
                out.serve.engine.scale =
                    value(&mut args, "--scale")?.parse().map_err(|e| format!("--scale: {e}"))?;
                if out.serve.engine.scale == 0 {
                    return Err("--scale needs a positive divisor".into());
                }
            }
            "--queue-depth" => {
                out.serve.queue_depth = value(&mut args, "--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
                if out.serve.queue_depth == 0 {
                    return Err("--queue-depth needs a positive depth".into());
                }
            }
            "--checkpoint-every" => {
                out.serve.checkpoint_every = value(&mut args, "--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--seed" => {
                out.serve.engine.seed =
                    value(&mut args, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--replicas" => {
                let k: usize = value(&mut args, "--replicas")?
                    .parse()
                    .map_err(|e| format!("--replicas: {e}\n{FLEETD_USAGE}"))?;
                if !(1..=3).contains(&k) {
                    return Err(format!("--replicas needs 1, 2 or 3 (got {k})\n{FLEETD_USAGE}"));
                }
                out.serve.replicas = k;
            }
            "--rejuvenate-every" => {
                let n: u64 = value(&mut args, "--rejuvenate-every")?
                    .parse()
                    .map_err(|e| format!("--rejuvenate-every: {e}\n{FLEETD_USAGE}"))?;
                if n == 0 || n > 1_000_000 {
                    return Err(format!(
                        "--rejuvenate-every is out of [1, 1000000] (got {n})\n{FLEETD_USAGE}"
                    ));
                }
                out.serve.rejuvenate_every = Some(n);
            }
            "--no-superblocks" => out.serve.engine.superblocks = false,
            "--no-compartments" => out.serve.engine.compartments = false,
            "--replay" => out.replay = Some(PathBuf::from(value(&mut args, "--replay")?)),
            "--out" => out.out = Some(PathBuf::from(value(&mut args, "--out")?)),
            "--quick" => out.quick = true,
            "--help" | "-h" => return Err(FLEETD_USAGE.into()),
            other => return Err(format!("unknown option {other}\n{FLEETD_USAGE}")),
        }
    }
    if out.quick {
        out.serve.shards = out.serve.shards.min(2);
        out.serve.engine.scale = out.serve.engine.scale.max(60);
        out.serve.checkpoint_every = 4;
    }
    match (state, &out.replay) {
        (Some(dir), _) => out.serve.state_dir = dir,
        (None, Some(_)) => {}
        (None, None) => return Err(format!("--state DIR is required\n{FLEETD_USAGE}")),
    }
    Ok(out)
}

pub(crate) fn app_by_name(name: &str) -> Option<ServiceApp> {
    ServiceApp::ALL.iter().copied().find(|a| a.name() == name)
}

/// Parsed `loadgen` command line.
#[derive(Debug, Clone)]
pub struct LoadgenArgs {
    /// Daemon address, e.g. `127.0.0.1:4600`.
    pub addr: String,
    /// Offered loads to sweep, in requests per wall-clock second.
    pub rates: Vec<f64>,
    /// Requests per sweep point.
    pub requests: u32,
    /// Attack probability per request, in ‰ (0–1000).
    pub attack_per_mille: u32,
    /// Traffic seed (payload mix only — pacing is wall-clock).
    pub seed: u64,
    /// Where the sweep JSON goes (`--out PATH`).
    pub out: Option<PathBuf>,
    /// Smoke-test shape: two rates, few requests.
    pub quick: bool,
    /// Send a `SHUTDOWN` frame after the sweep.
    pub shutdown: bool,
    /// Fail unless the sweep observed at least this many detections.
    pub assert_min_detections: Option<u64>,
    /// How long to wait for in-flight responses after the last send.
    pub drain_timeout_ms: u64,
}

/// `loadgen --help` text.
pub const LOADGEN_USAGE: &str = "\
loadgen — open-loop load generator for fleetd

USAGE: loadgen --addr HOST:PORT [--rates R1,R2,...] [--requests N]
               [--attack-per-mille N] [--seed N] [--out PATH]
               [--quick] [--shutdown] [--assert-min-detections N]
               [--drain-timeout-ms N]

Fetches HEALTH first to learn the daemon's service app and work scale,
then replays a benign + real-exploit mix at each offered load (open
loop: send times follow the schedule, never the server). Reports, per
point, admitted/rejected counts and wall-clock latency percentiles of
admitted requests, plus the saturation knee (highest offered load whose
rejection ratio stays within 1%). --shutdown asks the daemon to drain
and exit afterwards; --assert-min-detections turns the run into a
self-checking smoke test.";

/// Parses the `loadgen` command line.
///
/// # Errors
///
/// A usage-bearing message on unknown options or unparsable values.
pub fn parse_loadgen_args(args: impl Iterator<Item = String>) -> Result<LoadgenArgs, String> {
    fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
        args.next().ok_or_else(|| format!("{flag} needs a value\n{LOADGEN_USAGE}"))
    }
    let mut out = LoadgenArgs {
        addr: String::new(),
        rates: vec![4.0, 8.0, 16.0, 32.0, 64.0],
        requests: 48,
        attack_per_mille: 120,
        seed: 0x10ad_6e4a,
        out: None,
        quick: false,
        shutdown: false,
        assert_min_detections: None,
        drain_timeout_ms: 30_000,
    };
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => out.addr = value(&mut args, "--addr")?,
            "--rates" => {
                let v = value(&mut args, "--rates")?;
                out.rates = v
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().map_err(|e| format!("--rates: {e}")))
                    .collect::<Result<_, _>>()?;
                if out.rates.is_empty() || out.rates.iter().any(|r| *r <= 0.0 || !r.is_finite()) {
                    return Err("--rates needs positive finite rates".into());
                }
            }
            "--requests" => {
                out.requests = value(&mut args, "--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
                if out.requests == 0 {
                    return Err("--requests needs a positive count".into());
                }
            }
            "--attack-per-mille" => {
                out.attack_per_mille = value(&mut args, "--attack-per-mille")?
                    .parse()
                    .map_err(|e| format!("--attack-per-mille: {e}"))?;
                if out.attack_per_mille > 1000 {
                    return Err("--attack-per-mille is out of [0, 1000]".into());
                }
            }
            "--seed" => {
                out.seed =
                    value(&mut args, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => out.out = Some(PathBuf::from(value(&mut args, "--out")?)),
            "--quick" => out.quick = true,
            "--shutdown" => out.shutdown = true,
            "--assert-min-detections" => {
                out.assert_min_detections = Some(
                    value(&mut args, "--assert-min-detections")?
                        .parse()
                        .map_err(|e| format!("--assert-min-detections: {e}"))?,
                );
            }
            "--drain-timeout-ms" => {
                out.drain_timeout_ms = value(&mut args, "--drain-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--drain-timeout-ms: {e}"))?;
                if out.drain_timeout_ms == 0 {
                    return Err("--drain-timeout-ms needs a positive timeout".into());
                }
            }
            "--help" | "-h" => return Err(LOADGEN_USAGE.into()),
            other => return Err(format!("unknown option {other}\n{LOADGEN_USAGE}")),
        }
    }
    if out.addr.is_empty() {
        return Err(format!("--addr HOST:PORT is required\n{LOADGEN_USAGE}"));
    }
    if out.quick {
        out.rates = vec![8.0, 96.0];
        out.requests = 16;
        out.attack_per_mille = out.attack_per_mille.max(250);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> std::vec::IntoIter<String> {
        args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn fleetd_defaults_and_overrides_parse() {
        let a = parse_fleetd_args(sv(&[
            "--state",
            "/tmp/x",
            "--port",
            "4601",
            "--shards",
            "3",
            "--app",
            "bind",
            "--scale",
            "25",
            "--queue-depth",
            "7",
            "--checkpoint-every",
            "2",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(a.serve.state_dir, PathBuf::from("/tmp/x"));
        assert_eq!(a.serve.port, 4601);
        assert_eq!(a.serve.shards, 3);
        assert_eq!(a.serve.engine.app, ServiceApp::Bind);
        assert_eq!(a.serve.engine.scale, 25);
        assert_eq!(a.serve.queue_depth, 7);
        assert_eq!(a.serve.checkpoint_every, 2);
        assert_eq!(a.serve.engine.seed, 9);
        assert!(a.replay.is_none());
        assert!(a.serve.engine.superblocks, "superblocks default on");
        let a = parse_fleetd_args(sv(&["--state", "d", "--no-superblocks"])).unwrap();
        assert!(!a.serve.engine.superblocks);
        assert!(FLEETD_USAGE.contains("--no-superblocks"));
        assert!(a.serve.engine.compartments, "compartments default on");
        let a = parse_fleetd_args(sv(&["--state", "d", "--no-compartments"])).unwrap();
        assert!(!a.serve.engine.compartments);
        assert!(FLEETD_USAGE.contains("--no-compartments"));
    }

    #[test]
    fn fleetd_unknown_flag_is_an_error_with_usage() {
        let err = parse_fleetd_args(sv(&["--state", "d", "--bogus"])).unwrap_err();
        assert!(err.contains("unknown option --bogus"));
        assert!(err.contains("USAGE"), "error must carry the usage string");
    }

    #[test]
    fn fleetd_malformed_value_is_an_error() {
        assert!(parse_fleetd_args(sv(&["--state", "d", "--port", "nope"])).is_err());
        assert!(parse_fleetd_args(sv(&["--state", "d", "--shards", "0"])).is_err());
        assert!(parse_fleetd_args(sv(&["--state", "d", "--app", "notepad"])).is_err());
        assert!(parse_fleetd_args(sv(&["--state", "d", "--scale"])).is_err());
    }

    #[test]
    fn fleetd_replica_flags_parse_and_validate() {
        let a = parse_fleetd_args(sv(&["--state", "d"])).unwrap();
        assert_eq!(a.serve.replicas, 1, "unreplicated by default");
        assert_eq!(a.serve.rejuvenate_every, None);
        let a =
            parse_fleetd_args(sv(&["--state", "d", "--replicas", "3", "--rejuvenate-every", "16"]))
                .unwrap();
        assert_eq!(a.serve.replicas, 3);
        assert_eq!(a.serve.rejuvenate_every, Some(16));
        for bad in [["--replicas", "0"], ["--replicas", "4"], ["--replicas", "-1"]] {
            let err = parse_fleetd_args(sv(&["--state", "d", bad[0], bad[1]])).unwrap_err();
            assert!(err.contains("USAGE") || err.contains("--replicas"), "{err}");
        }
        for bad in [["--rejuvenate-every", "0"], ["--rejuvenate-every", "1000001"]] {
            let err = parse_fleetd_args(sv(&["--state", "d", bad[0], bad[1]])).unwrap_err();
            assert!(err.contains("[1, 1000000]"), "{err}");
        }
        assert!(FLEETD_USAGE.contains("--replicas K"));
        assert!(FLEETD_USAGE.contains("--rejuvenate-every N"));
    }

    #[test]
    fn fleetd_requires_state_unless_replaying() {
        assert!(parse_fleetd_args(sv(&["--port", "1"])).is_err());
        let a = parse_fleetd_args(sv(&["--replay", "dir"])).unwrap();
        assert_eq!(a.replay, Some(PathBuf::from("dir")));
    }

    #[test]
    fn fleetd_help_returns_the_usage_string() {
        assert_eq!(parse_fleetd_args(sv(&["--help"])).unwrap_err(), FLEETD_USAGE);
    }

    #[test]
    fn loadgen_parses_and_validates() {
        let a = parse_loadgen_args(sv(&[
            "--addr",
            "127.0.0.1:9",
            "--rates",
            "2,4.5",
            "--requests",
            "10",
            "--shutdown",
            "--assert-min-detections",
            "3",
        ]))
        .unwrap();
        assert_eq!(a.addr, "127.0.0.1:9");
        assert_eq!(a.rates, vec![2.0, 4.5]);
        assert_eq!(a.requests, 10);
        assert!(a.shutdown);
        assert_eq!(a.assert_min_detections, Some(3));
    }

    #[test]
    fn loadgen_rejects_bad_input() {
        assert!(parse_loadgen_args(sv(&[])).is_err(), "--addr is required");
        assert!(parse_loadgen_args(sv(&["--addr", "a", "--rates", "0"])).is_err());
        assert!(parse_loadgen_args(sv(&["--addr", "a", "--rates", "-3"])).is_err());
        assert!(parse_loadgen_args(sv(&["--addr", "a", "--requests", "x"])).is_err());
        let err = parse_loadgen_args(sv(&["--addr", "a", "--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown option --frobnicate") && err.contains("USAGE"));
    }
}
