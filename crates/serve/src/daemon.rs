//! The `fleetd` daemon core: TCP acceptor, per-shard bounded ingress
//! queues with admission control, worker loops, and the control plane.
//!
//! ## Threading shape
//!
//! One acceptor thread owns the listener; each connection gets a reader
//! thread (frame parse + dispatch) and a writer thread (serializing
//! pre-encoded reply frames from an mpsc channel, so shard workers and
//! control handlers never contend on the socket). Each shard worker
//! owns its [`ShardRunner`] and drains a bounded
//! [`std::sync::mpsc::sync_channel`] — the *only* buffering between the
//! socket and the simulated system, so memory stays bounded no matter
//! the offered load: when every live queue is at its depth watermark
//! the request is rejected with a typed frame instead of queued.
//!
//! ## Write-ahead discipline
//!
//! A worker appends each request to its ingress log *before* delivering
//! it, so the log is always a superset of what influenced the simulated
//! state: replay can only over-approximate, never miss. Checkpoints
//! (`checkpoint_every` served requests) sync the log first, then write
//! the snapshot whose progress cursor points into it — a crash between
//! the two replays a little more of the log, landing in the same state.

use std::collections::BTreeSet;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use indra_bench::Histogram;
use indra_core::RecoveryLevel;
use indra_fleet::{aggregate_stats, FleetStats, ShardError, ShardOutput};
use indra_persist::{
    IngressKind, IngressRecord, IngressWriter, PersistError, SnapshotStore, WireReader, WireWriter,
    INGRESS_FILE,
};
use indra_replica::DigestCache;

use crate::engine::{
    decode_engine_meta, encode_engine_meta, Disposition, EngineConfig, ShardRunner,
};
use crate::proto::{
    encode_frame, read_frame, Frame, FrameError, HealthReply, RejectReason, Verdict,
};

/// Host-side daemon configuration (everything that does *not* influence
/// the simulated trajectory lives here; the sim-deterministic knobs are
/// in [`EngineConfig`], which is what gets persisted to `serve.meta`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Sim-deterministic engine knobs (persisted; replay reuses them).
    pub engine: EngineConfig,
    /// Initial live shard count.
    pub shards: usize,
    /// Ingress queue depth per shard (the admission watermark).
    pub queue_depth: usize,
    /// Durably checkpoint a shard after every N served requests
    /// (0 = log-only; replay then recovers from the log alone).
    pub checkpoint_every: u32,
    /// State directory: `serve.meta` + one `shard-NNNN/` per shard
    /// (ingress log, base snapshot, journal).
    pub state_dir: PathBuf,
    /// TCP port to bind on loopback (0 = ephemeral).
    pub port: u16,
    /// Replicas per shard (1 = unreplicated). The extra K-1 followers
    /// shadow the authoritative primary from the same admitted stream
    /// and vote on (disposition, state digest) after every request; a
    /// divergent follower is masked and rebuilt from the primary's
    /// durable checkpoint + ingress history. The primary alone owns the
    /// log and the reply path, so `--replay` output stays byte-identical
    /// whatever K is.
    pub replicas: usize,
    /// Proactively rebuild one follower every N admitted requests,
    /// round-robin (None = never). A no-op at `replicas: 1`.
    pub rejuvenate_every: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            engine: EngineConfig::default(),
            shards: 4,
            queue_depth: 16,
            checkpoint_every: 8,
            state_dir: PathBuf::from("fleetd-state"),
            port: 0,
            replicas: 1,
            rejuvenate_every: None,
        }
    }
}

/// Daemon-level error.
#[derive(Debug)]
pub enum ServeError {
    /// Socket / filesystem failure.
    Io(std::io::Error),
    /// Durable state store failure.
    Persist(PersistError),
    /// A shard failed to build or persist.
    Shard(ShardError),
    /// A shard worker thread panicked outside the guarded deliver path.
    WorkerPanicked {
        /// Which shard.
        shard: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Persist(e) => write!(f, "persist error: {e}"),
            ServeError::Shard(e) => write!(f, "shard error: {e}"),
            ServeError::WorkerPanicked { shard } => write!(f, "shard {shard} worker panicked"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> ServeError {
        ServeError::Persist(e)
    }
}

impl From<ShardError> for ServeError {
    fn from(e: ShardError) -> ServeError {
        ServeError::Shard(e)
    }
}

/// Final report of a daemon run. `stats` obeys the fleet determinism
/// contract (pure function of the admitted ingress logs); wall-clock
/// figures stay outside it.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Deterministic fleet statistics (replay reproduces these bytes).
    pub stats: FleetStats,
    /// Requests turned away at admission (host-side, not replayed —
    /// rejected requests never touch simulated state).
    pub rejected: u64,
    /// Wall-clock daemon lifetime.
    pub wall_seconds: f64,
}

/// One request admitted to a shard queue.
struct WorkItem {
    id: u64,
    malicious: bool,
    data: Vec<u8>,
    /// Pre-encoded reply frames go back through the connection's writer.
    reply: Sender<Vec<u8>>,
}

/// Live counters one shard worker publishes for the control plane.
#[derive(Debug, Default)]
struct ShardShared {
    served: AtomicU64,
    detections: AtomicU64,
    revivals: AtomicU64,
    quarantined: AtomicU64,
    divergences: AtomicU64,
    divergent_masked: AtomicU64,
    rejuvenations: AtomicU64,
    detection_insns: AtomicU64,
    draining: AtomicBool,
}

struct Slot {
    shard: usize,
    tx: Option<SyncSender<WorkItem>>,
    shared: Arc<ShardShared>,
    handle: Option<JoinHandle<Result<ShardOutput, ShardError>>>,
}

struct Router {
    slots: Vec<Slot>,
    next_shard_id: usize,
}

impl Router {
    fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.tx.is_some()).count()
    }

    fn draining(&self) -> usize {
        self.slots.iter().filter(|s| s.tx.is_none() && s.handle.is_some()).count()
    }
}

struct Inner {
    cfg: ServeConfig,
    router: Mutex<Router>,
    rr: AtomicUsize,
    rejected: AtomicU64,
    stop: AtomicBool,
    shutdown_requested: AtomicBool,
}

impl Inner {
    fn health(&self) -> HealthReply {
        let router = self.router.lock().expect("router lock");
        let mut served = 0;
        let mut detections = 0;
        let mut revivals = 0;
        let mut quarantined = 0;
        let mut divergences = 0;
        let mut divergent_masked = 0;
        let mut rejuvenations = 0;
        let mut detection_insns = 0;
        for slot in &router.slots {
            served += slot.shared.served.load(Ordering::SeqCst);
            detections += slot.shared.detections.load(Ordering::SeqCst);
            revivals += slot.shared.revivals.load(Ordering::SeqCst);
            quarantined += slot.shared.quarantined.load(Ordering::SeqCst);
            divergences += slot.shared.divergences.load(Ordering::SeqCst);
            divergent_masked += slot.shared.divergent_masked.load(Ordering::SeqCst);
            rejuvenations += slot.shared.rejuvenations.load(Ordering::SeqCst);
            detection_insns += slot.shared.detection_insns.load(Ordering::SeqCst);
        }
        let live = router.live() as u32;
        HealthReply {
            ok: live > 0,
            app: self.cfg.engine.app.name().to_string(),
            scale: self.cfg.engine.scale,
            shards_live: live,
            shards_draining: router.draining() as u32,
            served,
            detections,
            revivals,
            quarantined,
            rejected: self.rejected.load(Ordering::SeqCst),
            replicas: self.cfg.replicas.max(1) as u32,
            divergences,
            divergent_masked,
            rejuvenations,
            detection_insns,
        }
    }

    fn stats_json(&self) -> String {
        let h = self.health();
        indra_core::json::JsonObject::new()
            .str("app", &h.app)
            .u64("scale", u64::from(h.scale))
            .u64("shards_live", u64::from(h.shards_live))
            .u64("shards_draining", u64::from(h.shards_draining))
            .u64("served", h.served)
            .u64("detections", h.detections)
            .u64("revivals", h.revivals)
            .u64("quarantined", h.quarantined)
            .u64("rejected", h.rejected)
            .u64("replicas", u64::from(h.replicas))
            .u64("divergences", h.divergences)
            .u64("divergent_masked", h.divergent_masked)
            .u64("rejuvenations", h.rejuvenations)
            .u64("detection_insns", h.detection_insns)
            .finish()
    }

    /// Routes a request round-robin across live shards; every live
    /// queue full → typed rejection (never unbounded buffering).
    fn route(&self, item: WorkItem) -> Result<(), (WorkItem, RejectReason)> {
        let router = self.router.lock().expect("router lock");
        let live: Vec<&Slot> = router.slots.iter().filter(|s| s.tx.is_some()).collect();
        if live.is_empty() {
            return Err((item, RejectReason::NoShards));
        }
        let start = self.rr.fetch_add(1, Ordering::Relaxed) % live.len();
        let mut item = item;
        for off in 0..live.len() {
            let slot = live[(start + off) % live.len()];
            let tx = slot.tx.as_ref().expect("live slot has tx");
            match tx.try_send(item) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(back)) | Err(TrySendError::Disconnected(back)) => {
                    item = back;
                }
            }
        }
        Err((item, RejectReason::QueueFull))
    }
}

/// A running `fleetd` instance. Dropping it without [`Daemon::stop`]
/// leaks the worker threads; always stop.
pub struct Daemon {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    started: Instant,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon").field("addr", &self.addr).finish_non_exhaustive()
    }
}

/// Shard directories present in a state dir, in shard order.
pub(crate) fn discover_shards(root: &Path) -> Result<Vec<usize>, ServeError> {
    let mut ids = Vec::new();
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let name = entry.file_name();
        if let Some(num) = name.to_string_lossy().strip_prefix("shard-") {
            if let Ok(id) = num.parse::<usize>() {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

impl Daemon {
    /// Binds the listener, spawns (or resumes) the shard workers and
    /// the acceptor, and returns immediately.
    ///
    /// A state dir that already holds `serve.meta` is *resumed*: the
    /// stored [`EngineConfig`] wins over `cfg.engine` (replay identity
    /// requires the original sim knobs), every existing shard directory
    /// gets a worker (recovering checkpoint + ingress log), and new
    /// shards are added only if `cfg.shards` exceeds the existing count.
    ///
    /// # Errors
    ///
    /// Bind failure, store corruption, or a shard that cannot deploy.
    pub fn start(mut cfg: ServeConfig) -> Result<Daemon, ServeError> {
        let store = SnapshotStore::create(&cfg.state_dir)?;
        match store.read_meta() {
            Ok(meta) => cfg.engine = decode_engine_meta(&meta)?,
            Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                store.write_meta(&encode_engine_meta(&cfg.engine))?;
            }
            Err(e) => return Err(e.into()),
        }
        let existing = discover_shards(store.root())?;
        let mut shard_ids: BTreeSet<usize> = existing.into_iter().collect();
        let mut next_fresh = 0usize;
        while shard_ids.len() < cfg.shards {
            shard_ids.insert(next_fresh);
            next_fresh += 1;
        }
        let next_shard_id = shard_ids.last().map_or(0, |m| m + 1);

        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;

        let inner = Arc::new(Inner {
            cfg,
            router: Mutex::new(Router { slots: Vec::new(), next_shard_id }),
            rr: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
        });

        {
            let mut router = inner.router.lock().expect("router lock");
            for shard in shard_ids {
                router.slots.push(spawn_shard(&inner.cfg, shard)?);
            }
        }

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if inner.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        let inner = Arc::clone(&inner);
                        std::thread::spawn(move || handle_conn(&inner, stream));
                    }
                }
            })
        };

        Ok(Daemon { inner, addr, acceptor: Some(acceptor), started: Instant::now() })
    }

    /// The bound listen address (loopback; port may be ephemeral).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a client sent a `SHUTDOWN` frame (or
    /// [`Daemon::request_shutdown`] ran); the owner should then call
    /// [`Daemon::stop`].
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Raises the shutdown flag (e.g. from a signal handler's poll
    /// loop).
    pub fn request_shutdown(&self) {
        self.inner.shutdown_requested.store(true, Ordering::SeqCst);
    }

    /// Stops accepting, drains every shard queue, flushes final
    /// checkpoints, joins the workers and folds the deterministic fleet
    /// stats (shard order, like the batch executor).
    ///
    /// # Errors
    ///
    /// The first shard worker failure, if any.
    pub fn stop(mut self) -> Result<ServeReport, ServeError> {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let slots = {
            let mut router = self.inner.router.lock().expect("router lock");
            // Closing every sender ends each worker's recv loop once its
            // queue drains; workers then checkpoint and exit.
            for slot in &mut router.slots {
                slot.tx = None;
            }
            std::mem::take(&mut router.slots)
        };
        let mut outputs = Vec::new();
        for mut slot in slots {
            if let Some(h) = slot.handle.take() {
                match h.join() {
                    Ok(Ok(out)) => outputs.push(out),
                    Ok(Err(e)) => return Err(e.into()),
                    Err(_) => return Err(ServeError::WorkerPanicked { shard: slot.shard }),
                }
            }
        }
        outputs.sort_by_key(|o| o.plan.shard);
        let mut latency = Histogram::new();
        for out in &outputs {
            for s in &out.report.samples {
                latency.record(s.cycles);
            }
        }
        Ok(ServeReport {
            stats: aggregate_stats(&outputs, latency),
            rejected: self.inner.rejected.load(Ordering::SeqCst),
            wall_seconds: self.started.elapsed().as_secs_f64(),
        })
    }
}

/// Everything one shard worker needs that was decided at spawn time.
struct WorkerCfg {
    engine: EngineConfig,
    root: PathBuf,
    shard: usize,
    checkpoint_every: u32,
    replicas: usize,
    rejuvenate_every: Option<u64>,
}

fn spawn_shard(cfg: &ServeConfig, shard: usize) -> Result<Slot, ServeError> {
    let (tx, rx) = mpsc::sync_channel::<WorkItem>(cfg.queue_depth.max(1));
    let shared = Arc::new(ShardShared::default());
    let worker_shared = Arc::clone(&shared);
    let worker_cfg = WorkerCfg {
        engine: cfg.engine.clone(),
        root: cfg.state_dir.clone(),
        shard,
        checkpoint_every: cfg.checkpoint_every,
        replicas: cfg.replicas.max(1),
        rejuvenate_every: cfg.rejuvenate_every,
    };
    let handle = std::thread::Builder::new()
        .name(format!("shard-{shard:04}"))
        .spawn(move || shard_worker(&worker_cfg, &worker_shared, &rx))
        .map_err(ServeError::Io)?;
    Ok(Slot { shard, tx: Some(tx), shared, handle: Some(handle) })
}

fn publish(shared: &ShardShared, runner: &ShardRunner) {
    let report = runner.report();
    shared.served.store(report.served, Ordering::SeqCst);
    shared.detections.store(report.detections.len() as u64, Ordering::SeqCst);
    shared
        .detection_insns
        .store(report.detections.iter().map(|d| d.insns_into_request).sum(), Ordering::SeqCst);
    shared.revivals.store(runner.revivals, Ordering::SeqCst);
    shared.quarantined.store(runner.quarantined(), Ordering::SeqCst);
}

fn quarantine_record(seq: u64) -> IngressRecord {
    IngressRecord {
        seq,
        kind: IngressKind::Quarantine,
        request_id: 0,
        malicious: false,
        data: Vec::new(),
    }
}

fn cursor_blob(cursor: u64) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(cursor);
    w.finish()
}

pub(crate) fn read_cursor(progress: &[u8]) -> Result<u64, PersistError> {
    let mut r = WireReader::new(progress);
    let cursor = r.u64("serve progress cursor")?;
    r.expect_exhausted("serve progress trailing bytes")?;
    Ok(cursor)
}

/// One shadow replica: a [`ShardRunner`] fed the identical admitted
/// stream as the authoritative primary, plus the incremental digest
/// cache it votes with.
struct Follower {
    runner: ShardRunner,
    cache: DigestCache,
}

/// Builds (or rebuilds) one shadow follower from the shard's durable
/// checkpoint plus the in-memory admitted history — exactly the state a
/// crash-restart of the primary would recover, which the replay
/// determinism contract makes byte-identical to the live primary.
fn build_follower(
    cfg: &WorkerCfg,
    store: &SnapshotStore,
    history: &[IngressRecord],
) -> Result<Follower, ShardError> {
    let checkpoint = match store.load_shard(cfg.shard).map_err(ShardError::Persist)? {
        Some(loaded) => {
            let cursor = read_cursor(&loaded.progress).map_err(ShardError::Persist)?;
            Some((loaded.state, cursor))
        }
        None => None,
    };
    let (runner, _already_tombstoned) =
        ShardRunner::from_log(cfg.engine.clone(), cfg.shard, history.to_vec(), checkpoint)?;
    Ok(Follower { runner, cache: DigestCache::new() })
}

/// One shard worker: recover durable state, then serve the queue until
/// every sender is gone, checkpointing as configured.
///
/// With `cfg.replicas > 1` the worker also runs K-1 shadow followers:
/// each follower admits the same record right after the primary, then
/// the worker compares (disposition, state digest). Any mismatch is a
/// divergence — the follower is masked and rebuilt from the durable
/// checkpoint + history. The primary stays authoritative for the log,
/// the reply and the final stats, so replay identity is untouched.
fn shard_worker(
    cfg: &WorkerCfg,
    shared: &ShardShared,
    rx: &Receiver<WorkItem>,
) -> Result<ShardOutput, ShardError> {
    let shard = cfg.shard;
    let store = SnapshotStore::open(&cfg.root).map_err(ShardError::Persist)?;
    let dir = store.shard_dir(shard);
    std::fs::create_dir_all(&dir).map_err(|e| ShardError::Persist(e.into()))?;
    let (mut log, records) = IngressWriter::recover(&dir.join(INGRESS_FILE), shard as u32)
        .map_err(ShardError::Persist)?;
    let follower_count = cfg.replicas.saturating_sub(1);
    // The in-memory mirror of the ingress log, maintained only when
    // followers exist (it is what divergent followers rebuild from).
    let mut history: Vec<IngressRecord> =
        if follower_count > 0 { records.clone() } else { Vec::new() };
    let checkpoint = match store.load_shard(shard).map_err(ShardError::Persist)? {
        Some(loaded) => {
            let cursor = read_cursor(&loaded.progress).map_err(ShardError::Persist)?;
            Some((loaded.state, cursor))
        }
        None => None,
    };
    let (mut runner, fresh) =
        ShardRunner::from_log(cfg.engine.clone(), shard, records, checkpoint)?;
    // Recovery may have quarantined entries that killed the engine
    // deterministically; durably tombstone them before serving.
    for seq in fresh {
        let q = quarantine_record(seq);
        log.append(&q).map_err(ShardError::Persist)?;
        if follower_count > 0 {
            history.push(q);
        }
    }
    log.sync().map_err(ShardError::Persist)?;
    let mut writer = if cfg.checkpoint_every > 0 {
        Some(store.shard_writer(shard).map_err(ShardError::Persist)?)
    } else {
        None
    };
    let mut followers = Vec::with_capacity(follower_count);
    for _ in 0..follower_count {
        followers.push(build_follower(cfg, &store, &history)?);
    }
    let mut primary_cache = DigestCache::new();
    let mut admitted = 0u64;
    let mut rejuvenate_rr = 0usize;
    publish(shared, &runner);

    let mut since_checkpoint = 0u32;
    while let Ok(item) = rx.recv() {
        let rec = IngressRecord {
            seq: runner.next_seq(),
            kind: IngressKind::Request,
            request_id: item.id,
            malicious: item.malicious,
            data: item.data,
        };
        let shadow_rec = (follower_count > 0).then(|| rec.clone());
        // Write-ahead: log the admission before the sim sees it.
        log.append(&rec).map_err(ShardError::Persist)?;
        if let Some(r) = &shadow_rec {
            history.push(r.clone());
        }
        let (disp, tombstones) = runner.admit(rec);
        for seq in tombstones {
            let q = quarantine_record(seq);
            log.append(&q).map_err(ShardError::Persist)?;
            log.sync().map_err(ShardError::Persist)?;
            if follower_count > 0 {
                history.push(q);
            }
        }
        if let Some(shadow) = shadow_rec {
            let primary_digest = primary_cache.digest(runner.system_mut()).value;
            for f in &mut followers {
                let (fdisp, _ftombstones) = f.runner.admit(shadow.clone());
                let fdigest = f.cache.digest(f.runner.system_mut()).value;
                if fdisp != disp || fdigest != primary_digest {
                    shared.divergences.fetch_add(1, Ordering::SeqCst);
                    *f = build_follower(cfg, &store, &history)?;
                    shared.divergent_masked.fetch_add(1, Ordering::SeqCst);
                }
            }
            admitted += 1;
            if let Some(n) = cfg.rejuvenate_every {
                if n > 0 && admitted.is_multiple_of(n) {
                    let idx = rejuvenate_rr % followers.len();
                    rejuvenate_rr += 1;
                    followers[idx] = build_follower(cfg, &store, &history)?;
                    shared.rejuvenations.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        let verdict = match disp {
            Disposition::Served { .. } => Verdict::Served,
            Disposition::Detected { level: RecoveryLevel::Micro } => Verdict::DetectedMicro,
            Disposition::Detected { level: RecoveryLevel::Macro } => Verdict::DetectedMacro,
            Disposition::Quarantined => Verdict::Quarantined,
        };
        let latency_cycles = match disp {
            Disposition::Served { cycles } => cycles,
            _ => 0,
        };
        let frame = Frame::Response { id: item.id, shard: shard as u32, verdict, latency_cycles };
        // A vanished client is not a shard problem; the request is
        // already part of durable history either way.
        let _ = item.reply.send(encode_frame(&frame));
        publish(shared, &runner);
        since_checkpoint += 1;
        if let Some(w) = writer.as_mut() {
            if since_checkpoint >= cfg.checkpoint_every {
                since_checkpoint = 0;
                log.sync().map_err(ShardError::Persist)?;
                let (state, cursor) = runner.freeze();
                let receipt =
                    w.checkpoint(&state, &cursor_blob(cursor)).map_err(ShardError::Persist)?;
                runner.wal.absorb(receipt);
            }
        }
    }

    // Drained (all senders gone): final flush + checkpoint.
    log.sync().map_err(ShardError::Persist)?;
    if let Some(w) = writer.as_mut() {
        let (state, cursor) = runner.freeze();
        let receipt = w.checkpoint(&state, &cursor_blob(cursor)).map_err(ShardError::Persist)?;
        runner.wal.absorb(receipt);
    }
    shared.draining.store(true, Ordering::SeqCst);
    Ok(runner.finish(true))
}

/// Per-connection reader loop: parse frames, dispatch, reply through
/// the writer thread. A malformed frame gets a typed `ControlErr` and
/// closes the connection (framing is unrecoverable once desynced).
fn handle_conn(inner: &Arc<Inner>, stream: TcpStream) {
    let Ok(mut write_half) = stream.try_clone() else { return };
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
    let writer = std::thread::spawn(move || {
        while let Ok(bytes) = reply_rx.recv() {
            if write_half.write_all(&bytes).is_err() {
                break;
            }
        }
        let _ = write_half.flush();
    });
    let mut read_half = stream;
    loop {
        match read_frame(&mut read_half) {
            Ok(frame) => {
                if !dispatch(inner, frame, &reply_tx) {
                    break;
                }
            }
            Err(FrameError::Closed) => break,
            Err(e) => {
                let _ = reply_tx.send(encode_frame(&Frame::ControlErr { msg: e.to_string() }));
                break;
            }
        }
    }
    drop(reply_tx);
    let _ = writer.join();
}

/// Handles one inbound frame; returns false to close the connection.
fn dispatch(inner: &Arc<Inner>, frame: Frame, reply: &Sender<Vec<u8>>) -> bool {
    let send = |f: &Frame| reply.send(encode_frame(f)).is_ok();
    match frame {
        Frame::Request { id, malicious, data } => {
            let item = WorkItem { id, malicious, data, reply: reply.clone() };
            match inner.route(item) {
                Ok(()) => true,
                Err((item, reason)) => {
                    inner.rejected.fetch_add(1, Ordering::SeqCst);
                    send(&Frame::Rejected { id: item.id, reason })
                }
            }
        }
        Frame::Stats => send(&Frame::StatsReply { json: inner.stats_json() }),
        Frame::Health => send(&Frame::HealthReply(inner.health())),
        Frame::Drain { shard } => {
            let mut router = inner.router.lock().expect("router lock");
            match router.slots.iter_mut().find(|s| s.shard == shard as usize) {
                Some(slot) if slot.tx.is_some() => {
                    slot.tx = None;
                    slot.shared.draining.store(true, Ordering::SeqCst);
                    drop(router);
                    send(&Frame::ControlOk { detail: format!("draining shard {shard}") })
                }
                Some(_) => {
                    send(&Frame::ControlErr { msg: format!("shard {shard} already draining") })
                }
                None => send(&Frame::ControlErr { msg: format!("no such shard {shard}") }),
            }
        }
        Frame::Scale { shards } => {
            let target = shards as usize;
            let mut router = inner.router.lock().expect("router lock");
            let live = router.live();
            if target == 0 {
                return send(&Frame::ControlErr { msg: "target must be at least 1".into() });
            }
            if target == live {
                return send(&Frame::ControlOk { detail: format!("already at {live} shards") });
            }
            if target > live {
                for _ in live..target {
                    let shard = router.next_shard_id;
                    router.next_shard_id += 1;
                    match spawn_shard(&inner.cfg, shard) {
                        Ok(slot) => router.slots.push(slot),
                        Err(e) => {
                            drop(router);
                            return send(&Frame::ControlErr {
                                msg: format!("spawn shard {shard}: {e}"),
                            });
                        }
                    }
                }
            } else {
                // Drain the highest-numbered live shards down to target.
                let mut to_drain = live - target;
                for slot in router.slots.iter_mut().rev() {
                    if to_drain == 0 {
                        break;
                    }
                    if slot.tx.is_some() {
                        slot.tx = None;
                        slot.shared.draining.store(true, Ordering::SeqCst);
                        to_drain -= 1;
                    }
                }
            }
            drop(router);
            send(&Frame::ControlOk { detail: format!("scaling {live} -> {target} live shards") })
        }
        Frame::Shutdown => {
            inner.shutdown_requested.store(true, Ordering::SeqCst);
            send(&Frame::ControlOk { detail: "shutting down".into() })
        }
        Frame::Response { .. }
        | Frame::Rejected { .. }
        | Frame::StatsReply { .. }
        | Frame::HealthReply(_)
        | Frame::ControlOk { .. }
        | Frame::ControlErr { .. } => {
            send(&Frame::ControlErr { msg: "server-side frame on client path".into() });
            false
        }
    }
}
