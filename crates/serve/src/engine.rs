//! The deterministic per-shard service engine shared by live serving
//! and offline replay.
//!
//! Byte-identical record/replay holds *by construction*: the live
//! worker and the replay path drive the same [`ShardEngine`] through
//! the same operation sequence — deliver one request, run the system to
//! idle under a fixed slice size and step budget, or quarantine a seq —
//! and the ingress log records exactly that operation sequence. No sim
//! arrival clock is involved (a live service cannot know simulated
//! inter-arrival gaps), so a shard's trajectory is a pure function of
//! the ordered admitted byte sequence plus the [`EngineConfig`].
//!
//! [`ShardRunner`] layers the revival protocol on top: a delivery that
//! kills the engine (service halt, hang past the budget, or a panic)
//! triggers a rebuild — restore-from-scratch replay of the admitted
//! prefix — and one retry; a second death marks the request as poison,
//! quarantines its seq (a durable tombstone in the log) and moves on.
//! Replay applies tombstones at the same positional point, so live and
//! replayed trajectories stay identical even through deaths.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use indra_core::{IndraSystem, RecoveryLevel, SchemeKind, SystemConfig, SystemState};
use indra_fleet::{ShardError, ShardOutput, ShardPlan};
use indra_persist::{
    CheckpointReceipt, IngressKind, IngressRecord, PersistError, WireReader, WireWriter,
};
use indra_rng::derive_seed;
use indra_workloads::{build_app_scaled, ServiceApp, WorkloadSpec};

/// Everything that determines a shard engine's simulated behavior.
/// Persisted to `serve.meta` so `--replay` needs no other flags; all
/// fields are sim-deterministic knobs (host-side concerns like queue
/// depth and checkpoint cadence deliberately live elsewhere).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// The service every shard runs. One app for the whole daemon:
    /// attack payloads embed image-specific addresses, and admission
    /// routes round-robin, so heterogeneous shards would misroute
    /// exploits.
    pub app: ServiceApp,
    /// Work-scale divisor (1 = paper scale).
    pub scale: u32,
    /// Checkpoint scheme each shard deploys.
    pub scheme: SchemeKind,
    /// Trace FIFO entries per shard machine.
    pub fifo_entries: usize,
    /// CAM filter entries per shard machine.
    pub cam_entries: usize,
    /// Host-side fast paths (sim-identical either way).
    pub fast_paths: bool,
    /// Run-slice granularity of the deliver loop.
    pub run_slice_steps: u64,
    /// Master seed (only labels [`ShardPlan`]s — live traffic comes
    /// from clients, not from a seeded schedule).
    pub seed: u64,
    /// Superblock execution engine (sim-identical either way, like
    /// `fast_paths`; only the host's speed moves).
    pub superblocks: bool,
    /// Per-request compartments: fine-grained rewind-and-discard on
    /// detection. Sim-identical on attack-free fault-free traffic; under
    /// attack it changes recovery outcomes by design, so it is a
    /// deterministic knob and must travel through `serve.meta`.
    pub compartments: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            app: ServiceApp::Httpd,
            scale: 40,
            scheme: SchemeKind::Delta,
            fifo_entries: 32,
            cam_entries: 32,
            fast_paths: true,
            run_slice_steps: 200_000,
            seed: 0x5e71_ce00,
            superblocks: true,
            compartments: true,
        }
    }
}

fn app_tag(app: ServiceApp) -> u8 {
    ServiceApp::ALL.iter().position(|&a| a == app).expect("app in ALL") as u8
}

fn scheme_tag(scheme: SchemeKind) -> u8 {
    match scheme {
        SchemeKind::None => 0,
        SchemeKind::Delta => 1,
        SchemeKind::VirtualCheckpoint => 2,
        SchemeKind::SoftwareCheckpoint => 3,
        SchemeKind::UndoLog => 4,
    }
}

fn scheme_from_tag(tag: u8) -> Result<SchemeKind, PersistError> {
    Ok(match tag {
        0 => SchemeKind::None,
        1 => SchemeKind::Delta,
        2 => SchemeKind::VirtualCheckpoint,
        3 => SchemeKind::SoftwareCheckpoint,
        4 => SchemeKind::UndoLog,
        _ => return Err(PersistError::Corrupt { context: "unknown scheme kind" }),
    })
}

/// Serializes an [`EngineConfig`] for `serve.meta`.
#[must_use]
pub fn encode_engine_meta(cfg: &EngineConfig) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u8(app_tag(cfg.app));
    w.u32(cfg.scale);
    w.u8(scheme_tag(cfg.scheme));
    w.usize(cfg.fifo_entries);
    w.usize(cfg.cam_entries);
    w.bool(cfg.fast_paths);
    w.u64(cfg.run_slice_steps);
    w.u64(cfg.seed);
    w.bool(cfg.superblocks);
    w.bool(cfg.compartments);
    w.finish()
}

/// Deserializes `serve.meta` back into an [`EngineConfig`].
///
/// # Errors
///
/// Typed [`PersistError`] on truncation or unknown tags.
pub fn decode_engine_meta(bytes: &[u8]) -> Result<EngineConfig, PersistError> {
    let mut r = WireReader::new(bytes);
    let tag = r.u8("serve meta app")? as usize;
    let cfg = EngineConfig {
        app: *ServiceApp::ALL
            .get(tag)
            .ok_or(PersistError::Corrupt { context: "unknown service app" })?,
        scale: r.u32("serve meta scale")?,
        scheme: scheme_from_tag(r.u8("serve meta scheme")?)?,
        fifo_entries: r.usize("serve meta fifo")?,
        cam_entries: r.usize("serve meta cam")?,
        fast_paths: r.bool("serve meta fast paths")?,
        run_slice_steps: r.u64("serve meta slice")?,
        seed: r.u64("serve meta seed")?,
        superblocks: r.bool("serve meta superblocks")?,
        compartments: r.bool("serve meta compartments")?,
    };
    r.expect_exhausted("serve meta trailing bytes")?;
    Ok(cfg)
}

/// What one guarded delivery produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Response produced.
    Served {
        /// Delivery-to-response resurrectee cycles.
        cycles: u64,
    },
    /// A recovery episode fired on this request.
    Detected {
        /// Micro (per-request rollback) or macro recovery.
        level: RecoveryLevel,
    },
    /// The request killed the shard twice and was quarantined.
    Quarantined,
}

/// Raw outcome of a single unguarded delivery.
enum DeliverOutcome {
    Served {
        cycles: u64,
    },
    Detected {
        level: RecoveryLevel,
    },
    /// The engine is no longer trustworthy (halt / hang / vanished
    /// request) — the runner rebuilds it.
    Dead,
}

/// One shard's simulated system plus the fixed drive discipline.
pub struct ShardEngine {
    sys: IndraSystem,
    slice: u64,
    budget_slices: u64,
    started: Instant,
}

impl std::fmt::Debug for ShardEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardEngine").field("slice", &self.slice).finish_non_exhaustive()
    }
}

impl ShardEngine {
    /// Builds and deploys a fresh engine.
    ///
    /// # Errors
    ///
    /// [`ShardError::Deploy`] when the service image fails to load.
    pub fn new(cfg: &EngineConfig) -> Result<ShardEngine, ShardError> {
        let image = build_app_scaled(cfg.app, cfg.scale);
        let sys_cfg = SystemConfig {
            machine: indra_sim::MachineConfig {
                fifo_entries: cfg.fifo_entries,
                cam_entries: cfg.cam_entries,
                fast_paths: cfg.fast_paths,
                superblocks: cfg.superblocks,
                ..indra_sim::MachineConfig::default()
            },
            scheme: cfg.scheme,
            monitoring: true,
            compartments: cfg.compartments,
            ..SystemConfig::default()
        };
        let mut sys = IndraSystem::new(sys_cfg);
        sys.deploy(&image).map_err(ShardError::Deploy)?;
        // Same budget shape as the batch shard loop: a generous multiple
        // of the workload's nominal per-request work, but per *request*
        // here since there is no schedule length to pre-multiply.
        let per_request = WorkloadSpec::for_app(cfg.app)
            .scaled_down(cfg.scale.max(1))
            .approx_insns_per_request()
            .max(50_000);
        let slice = cfg.run_slice_steps.max(1);
        let budget_slices = (per_request * 16).div_ceil(slice) + 2;
        Ok(ShardEngine { sys, slice, budget_slices, started: Instant::now() })
    }

    /// Delivers one request and runs the system to idle under the fixed
    /// step budget.
    fn deliver(&mut self, data: Vec<u8>, malicious: bool) -> DeliverOutcome {
        let s0 = self.sys.report().samples.len();
        let d0 = self.sys.report().detections.len();
        let rid = self.sys.push_request(data, malicious);
        let mut slices_left = self.budget_slices;
        loop {
            match self.sys.run(self.slice) {
                indra_core::RunState::Idle => break,
                indra_core::RunState::Halted => return DeliverOutcome::Dead,
                indra_core::RunState::BudgetExhausted => {
                    slices_left -= 1;
                    if slices_left == 0 {
                        return DeliverOutcome::Dead;
                    }
                }
            }
        }
        // Keep the response queue bounded; the report carries the
        // authoritative outcome. Draining is part of the deterministic
        // op sequence (both paths drain once per delivery).
        let _ = self.sys.take_responses();
        if let Some(s) = self.sys.report().samples[s0..].iter().find(|s| s.request_id == rid) {
            return DeliverOutcome::Served { cycles: s.cycles };
        }
        if let Some(d) = self.sys.report().detections[d0..].last() {
            return DeliverOutcome::Detected { level: d.level };
        }
        DeliverOutcome::Dead
    }

    fn quarantine(&mut self, seq: u64) {
        self.sys.note_quarantined(seq);
    }

    /// Freezes the full system state (for checkpointing).
    #[must_use]
    pub fn freeze(&self) -> SystemState {
        self.sys.freeze()
    }

    /// Mutable access to the simulated system — what the replica layer
    /// digests for divergence voting. State-neutral reads only; the
    /// drive discipline stays the engine's.
    pub fn system_mut(&mut self) -> &mut IndraSystem {
        &mut self.sys
    }

    fn restore(&mut self, state: &SystemState) {
        self.sys.restore_state(state);
    }
}

/// Drives one shard through its admitted-request history, live or
/// replayed, with the full revival/quarantine protocol.
#[derive(Debug)]
pub struct ShardRunner {
    cfg: EngineConfig,
    shard: usize,
    engine: ShardEngine,
    /// Request records in seq order (`requests[i].seq == i`).
    requests: Vec<IngressRecord>,
    tombstones: BTreeSet<u64>,
    /// Requests with `seq < cursor` are already part of engine history.
    cursor: u64,
    /// Engine rebuilds performed (each is one revival).
    pub revivals: u64,
    /// WAL-delta volume the daemon's checkpoints wrote for this shard.
    /// Host-side observation: the daemon absorbs each checkpoint's
    /// receipt here, and it flows to [`ShardOutput::wal`] — never into
    /// the deterministic stats.
    pub wal: CheckpointReceipt,
}

impl ShardRunner {
    /// A fresh runner with no history.
    ///
    /// # Errors
    ///
    /// [`ShardError::Deploy`] when the service image fails to load.
    pub fn new(cfg: EngineConfig, shard: usize) -> Result<ShardRunner, ShardError> {
        let engine = ShardEngine::new(&cfg)?;
        Ok(ShardRunner {
            cfg,
            shard,
            engine,
            requests: Vec::new(),
            tombstones: BTreeSet::new(),
            cursor: 0,
            revivals: 0,
            wal: CheckpointReceipt::default(),
        })
    }

    /// Rebuilds a runner from a parsed ingress log, optionally starting
    /// from a checkpoint (`state` + the cursor it was taken at) instead
    /// of replaying from scratch. Any entry that deterministically
    /// kills the engine during recovery is quarantined exactly as it
    /// would have been live; the newly created tombstone seqs are
    /// returned so a live caller can append them to the log (offline
    /// replay ignores them — the log is read-only there).
    ///
    /// # Errors
    ///
    /// [`ShardError`] from engine construction, or a corrupt log whose
    /// request seqs are not dense.
    pub fn from_log(
        cfg: EngineConfig,
        shard: usize,
        records: Vec<IngressRecord>,
        checkpoint: Option<(SystemState, u64)>,
    ) -> Result<(ShardRunner, Vec<u64>), ShardError> {
        let mut requests = Vec::new();
        let mut tombstones = BTreeSet::new();
        for rec in records {
            match rec.kind {
                IngressKind::Request => {
                    if rec.seq != requests.len() as u64 {
                        return Err(ShardError::Persist(PersistError::Corrupt {
                            context: "ingress log seqs are not dense",
                        }));
                    }
                    requests.push(rec);
                }
                IngressKind::Quarantine => {
                    tombstones.insert(rec.seq);
                }
            }
        }
        let mut runner = ShardRunner::new(cfg, shard)?;
        runner.requests = requests;
        runner.tombstones = tombstones;
        if let Some((state, cursor)) = checkpoint {
            runner.engine.restore(&state);
            runner.cursor = cursor;
        }
        let mut new_tombstones = Vec::new();
        while runner.cursor < runner.requests.len() as u64 {
            if let (Disposition::Quarantined, fresh) = runner.process_next() {
                new_tombstones.extend(fresh);
            }
        }
        Ok((runner, new_tombstones))
    }

    /// The next admission seq this runner will assign.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.requests.len() as u64
    }

    /// Mutable access to the engine's simulated system, for the replica
    /// layer's state digests.
    pub fn system_mut(&mut self) -> &mut indra_core::IndraSystem {
        self.engine.system_mut()
    }

    /// Admits one already-logged request record and processes it.
    /// Returns its disposition plus any tombstone seq newly created (at
    /// most one — this request's own, if it proved poisonous).
    ///
    /// # Panics
    ///
    /// Panics when `rec` is not the next dense request seq — the caller
    /// logs before admitting, so a gap is a harness bug.
    pub fn admit(&mut self, rec: IngressRecord) -> (Disposition, Vec<u64>) {
        assert_eq!(rec.kind, IngressKind::Request, "admit takes request records");
        assert_eq!(rec.seq, self.next_seq(), "admission seqs must be dense");
        self.requests.push(rec);
        self.process_next()
    }

    /// Processes the request at `cursor` with the guarded
    /// revive-retry-quarantine protocol.
    fn process_next(&mut self) -> (Disposition, Vec<u64>) {
        let seq = self.cursor;
        if self.tombstones.contains(&seq) {
            self.engine.quarantine(seq);
            self.cursor += 1;
            return (Disposition::Quarantined, Vec::new());
        }
        match self.try_deliver(seq) {
            Some(disp) => {
                self.cursor += 1;
                (disp, Vec::new())
            }
            None => {
                // First death: revive (rebuild to just before this seq)
                // and retry once.
                self.rebuild();
                match self.try_deliver(seq) {
                    Some(disp) => {
                        self.cursor += 1;
                        (disp, Vec::new())
                    }
                    None => {
                        // Second death: poison. Quarantine the seq and
                        // revive without it.
                        self.tombstones.insert(seq);
                        self.rebuild();
                        self.engine.quarantine(seq);
                        self.cursor += 1;
                        (Disposition::Quarantined, vec![seq])
                    }
                }
            }
        }
    }

    /// One guarded delivery of `requests[seq]`; `None` means the engine
    /// died (halt, hang, panic) and must be rebuilt.
    fn try_deliver(&mut self, seq: u64) -> Option<Disposition> {
        let rec = &self.requests[seq as usize];
        let (data, malicious) = (rec.data.clone(), rec.malicious);
        let engine = &mut self.engine;
        let outcome = catch_unwind(AssertUnwindSafe(|| engine.deliver(data, malicious)));
        match outcome {
            Ok(DeliverOutcome::Served { cycles }) => Some(Disposition::Served { cycles }),
            Ok(DeliverOutcome::Detected { level }) => Some(Disposition::Detected { level }),
            Ok(DeliverOutcome::Dead) | Err(_) => None,
        }
    }

    /// Rebuilds the engine from scratch and replays history up to (not
    /// including) `cursor`. Deterministic: every replayed entry already
    /// succeeded on an identical trajectory, so the replay is unguarded.
    fn rebuild(&mut self) {
        self.revivals += 1;
        self.engine = ShardEngine::new(&self.cfg).expect("engine rebuilt from the same config");
        for seq in 0..self.cursor {
            if self.tombstones.contains(&seq) {
                self.engine.quarantine(seq);
            } else {
                let rec = &self.requests[seq as usize];
                let (data, malicious) = (rec.data.clone(), rec.malicious);
                let _ = self.engine.deliver(data, malicious);
            }
        }
    }

    /// Read access to the run report (for live counters).
    #[must_use]
    pub fn report(&self) -> &indra_core::RunReport {
        self.engine.sys.report()
    }

    /// Quarantined request count so far.
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.tombstones.len() as u64
    }

    /// Freezes the engine state for a checkpoint, paired with the
    /// cursor to store as the progress blob.
    #[must_use]
    pub fn freeze(&self) -> (SystemState, u64) {
        (self.engine.freeze(), self.cursor)
    }

    /// Collapses the runner into the fleet-shaped [`ShardOutput`] the
    /// aggregator consumes. `benign_sent`/`attacks_sent` count every
    /// admitted request (quarantined ones included — they were sent).
    #[must_use]
    pub fn finish(self, completed: bool) -> ShardOutput {
        let benign_sent = self.requests.iter().filter(|r| !r.malicious).count() as u64;
        let attacks_sent = self.requests.len() as u64 - benign_sent;
        let machine = self.engine.sys.machine();
        let insns = (0..machine.num_cores()).map(|c| machine.core(c).retired()).sum();
        let mut superblocks = indra_sim::SuperblockStats::default();
        let mut predecode = indra_sim::PredecodeStats::default();
        for c in 0..machine.num_cores() {
            superblocks += machine.superblock_stats(c);
            predecode += machine.predecode_stats(c);
        }
        ShardOutput {
            plan: ShardPlan {
                shard: self.shard,
                app: self.cfg.app,
                seed: derive_seed(self.cfg.seed, self.shard as u64),
            },
            sim_cycles: self.engine.sys.service_cycles(),
            report: self.engine.sys.report().clone(),
            benign_sent,
            attacks_sent,
            faults_injected: 0,
            completed,
            insns,
            wall_seconds: self.engine.started.elapsed().as_secs_f64(),
            superblocks,
            predecode,
            wal: self.wal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indra_persist::IngressKind;
    use indra_workloads::{benign_request, detectable_attack_suite};

    fn quick_cfg() -> EngineConfig {
        EngineConfig { scale: 60, ..EngineConfig::default() }
    }

    fn req(seq: u64, malicious: bool, data: Vec<u8>) -> IngressRecord {
        IngressRecord { seq, kind: IngressKind::Request, request_id: seq, malicious, data }
    }

    #[test]
    fn meta_roundtrip() {
        let cfg = EngineConfig {
            app: ServiceApp::Bind,
            scale: 17,
            scheme: SchemeKind::UndoLog,
            fast_paths: false,
            superblocks: false,
            compartments: false,
            ..EngineConfig::default()
        };
        assert_eq!(decode_engine_meta(&encode_engine_meta(&cfg)).unwrap(), cfg);
        assert!(decode_engine_meta(&[9, 9]).is_err());
    }

    #[test]
    fn live_and_replayed_runners_agree_byte_for_byte() {
        let cfg = quick_cfg();
        let image = build_app_scaled(cfg.app, cfg.scale);
        let attacks = detectable_attack_suite(&image);
        let mut records = Vec::new();
        for seq in 0..6u64 {
            let malicious = seq == 2;
            let data = if malicious {
                indra_workloads::attack_request(attacks[0], &image)
            } else {
                benign_request(seq as u8, 0x20 + seq as u8)
            };
            records.push(req(seq, malicious, data));
        }

        // Live path: admit one by one.
        let mut live = ShardRunner::new(cfg.clone(), 0).unwrap();
        for rec in &records {
            let (_disp, tombs) = live.admit(rec.clone());
            assert!(tombs.is_empty(), "benign+detectable traffic must not quarantine");
        }
        let live_out = live.finish(true);

        // Replay path: whole log at once.
        let (replayed, fresh) = ShardRunner::from_log(cfg, 0, records, None).unwrap();
        assert!(fresh.is_empty());
        let replay_out = replayed.finish(true);

        assert_eq!(live_out.summary().to_json(), replay_out.summary().to_json());
        assert_eq!(live_out.report.samples, replay_out.report.samples);
        assert_eq!(live_out.sim_cycles, replay_out.sim_cycles);
    }

    #[test]
    fn checkpoint_resume_matches_straight_replay() {
        let cfg = quick_cfg();
        let records: Vec<IngressRecord> =
            (0..5u64).map(|s| req(s, false, benign_request(s as u8, 0x11))).collect();

        // Straight replay.
        let (straight, _) = ShardRunner::from_log(cfg.clone(), 1, records.clone(), None).unwrap();
        let straight_out = straight.finish(true);

        // Run half live, freeze, then resume from the checkpoint.
        let mut half = ShardRunner::new(cfg.clone(), 1).unwrap();
        for rec in &records[..3] {
            half.admit(rec.clone());
        }
        let (state, cursor) = half.freeze();
        assert_eq!(cursor, 3);
        let (resumed, _) = ShardRunner::from_log(cfg, 1, records, Some((state, cursor))).unwrap();
        let resumed_out = resumed.finish(true);

        assert_eq!(straight_out.summary().to_json(), resumed_out.summary().to_json());
        assert_eq!(straight_out.report.samples, resumed_out.report.samples);
    }

    #[test]
    fn tombstoned_seq_is_skipped_and_counted() {
        let cfg = quick_cfg();
        let mut records: Vec<IngressRecord> =
            (0..3u64).map(|s| req(s, false, benign_request(s as u8, 0x22))).collect();
        records.push(IngressRecord {
            seq: 1,
            kind: IngressKind::Quarantine,
            request_id: 0,
            malicious: false,
            data: Vec::new(),
        });
        let (runner, fresh) = ShardRunner::from_log(cfg, 0, records, None).unwrap();
        assert!(fresh.is_empty());
        assert_eq!(runner.quarantined(), 1);
        let out = runner.finish(true);
        assert_eq!(out.report.served, 2);
        assert_eq!(out.report.quarantined, vec![1]);
        assert_eq!(out.benign_sent, 3, "quarantined requests still count as sent");
    }
}
