#![warn(missing_docs)]
//! # indra-serve — a live control-plane daemon over the INDRA fleet
//!
//! The paper frames INDRA as infrastructure for *network services*:
//! resurrector cores supervising resurrectee cores that face real,
//! possibly hostile, traffic. The batch fleet (`indra-fleet`) drives
//! that shape from a pre-computed schedule; this crate closes the loop
//! with an actual server. `fleetd` owns a supervised fleet of shards —
//! each a complete [`indra_core::IndraSystem`] — and serves requests
//! arriving over a TCP socket in a length-prefixed, CRC-guarded binary
//! protocol ([`proto`]). An acceptor thread validates frames into typed
//! requests and routes them to per-shard bounded ingress queues;
//! admission control rejects (with a typed frame, never by buffering
//! unboundedly) when every queue is at its high-water mark. Control
//! frames (`STATS`, `HEALTH`, `DRAIN`, `SCALE`, `SHUTDOWN`) expose and
//! steer supervision state while traffic is in flight.
//!
//! ## Determinism contract (record/replay)
//!
//! A live service cannot be a pure function of a seed — clients decide
//! what arrives and when. Instead, every *admitted* request is appended
//! to a durable per-shard ingress log (`indra-persist` journal framing)
//! **before** it is delivered to the simulated system, and each shard's
//! simulated trajectory is, by construction, a pure function of that
//! ordered log ([`engine`]). `fleetd --replay <state-dir>` therefore
//! reproduces the live run's [`indra_fleet::FleetStats`] byte for byte
//! — including runs interrupted by `kill -9`, revived shards, and
//! quarantined poison requests — which is what makes a production
//! incident on this architecture *debuggable after the fact*.
//!
//! The open-loop [`loadgen`] drives a daemon at swept offered loads
//! with a benign + exploit mix and records the latency-vs-load curve,
//! saturation knee and rejection rates.

pub mod args;
pub mod daemon;
pub mod engine;
pub mod loadgen;
pub mod proto;
pub mod replay;
pub mod signal;

pub use args::{
    parse_fleetd_args, parse_loadgen_args, FleetdArgs, LoadgenArgs, FLEETD_USAGE, LOADGEN_USAGE,
};
pub use daemon::{Daemon, ServeConfig, ServeError, ServeReport};
pub use engine::{
    decode_engine_meta, encode_engine_meta, Disposition, EngineConfig, ShardEngine, ShardRunner,
};
pub use loadgen::{run_loadgen, LoadgenReport, SweepPoint};
pub use proto::{
    decode_frame, encode_frame, read_frame, write_frame, Frame, FrameError, HealthReply,
    RejectReason, Verdict, MAX_FRAME, MAX_REQUEST_DATA,
};
pub use replay::{replay_state_dir, ReplayOutcome};
pub use signal::install_shutdown_handler;
