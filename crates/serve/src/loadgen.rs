//! Open-loop load generator for `fleetd`.
//!
//! Open loop means the send schedule follows the offered rate, not the
//! server: request `i` of a point goes out at `start + i/rate`
//! regardless of how many responses have come back. That is the only
//! honest way to find a saturation knee — a closed-loop client slows
//! down with the server and never overloads it. Past the knee the
//! daemon's bounded ingress queues push back with typed rejections, so
//! the latency of *admitted* requests stays bounded while the rejection
//! ratio (not queueing delay) absorbs the overload.
//!
//! The payload mix is seeded ([`indra_rng`]) but pacing is wall-clock:
//! determinism of the *served* trajectory is the daemon's ingress-log
//! job, not the client's.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use indra_bench::{Histogram, HistogramSummary};
use indra_core::json::{json_array, json_f64, JsonObject};
use indra_rng::Rng;
use indra_workloads::{attack_request, benign_request, build_app_scaled, detectable_attack_suite};

use crate::args::{app_by_name, LoadgenArgs};
use crate::proto::{read_frame, write_frame, Frame, HealthReply, Verdict};

/// Measurements for one offered-load point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered load, requests per wall-clock second.
    pub offered_rps: f64,
    /// Requests sent.
    pub sent: u64,
    /// Requests admitted (got a `Response`).
    pub admitted: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Requests that never got an answer within the drain timeout.
    pub lost: u64,
    /// Admitted requests served normally.
    pub served: u64,
    /// Admitted requests that triggered a detection.
    pub detections: u64,
    /// Admitted requests quarantined as poison.
    pub quarantined: u64,
    /// Responses per second over the point's wall time.
    pub achieved_rps: f64,
    /// Wall-clock latency of admitted requests, microseconds.
    pub wall_us: HistogramSummary,
}

/// Full sweep report.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Daemon health snapshot taken before the sweep.
    pub health: HealthReply,
    /// One entry per offered rate, in sweep order.
    pub points: Vec<SweepPoint>,
    /// Saturation knee: highest offered rate whose rejection ratio
    /// stayed within 1% (None if even the lowest rate overloaded).
    pub knee_rps: Option<f64>,
}

impl LoadgenReport {
    /// Fixed-field-order JSON (deterministic given the measurements).
    #[must_use]
    pub fn to_json(&self, args: &LoadgenArgs) -> String {
        let points = json_array(self.points.iter().map(|p| {
            JsonObject::new()
                .f64("offered_rps", p.offered_rps)
                .u64("sent", p.sent)
                .u64("admitted", p.admitted)
                .u64("rejected", p.rejected)
                .u64("lost", p.lost)
                .f64(
                    "rejection_ratio",
                    if p.sent == 0 { 0.0 } else { p.rejected as f64 / p.sent as f64 },
                )
                .u64("served", p.served)
                .u64("detections", p.detections)
                .u64("quarantined", p.quarantined)
                .f64("achieved_rps", p.achieved_rps)
                .u64("wall_us_p50", p.wall_us.p50)
                .u64("wall_us_p95", p.wall_us.p95)
                .u64("wall_us_p99", p.wall_us.p99)
                .u64("wall_us_max", p.wall_us.max)
                .finish()
        }));
        JsonObject::new()
            .str("app", &self.health.app)
            .u64("scale", u64::from(self.health.scale))
            .u64("shards_live", u64::from(self.health.shards_live))
            .u64("requests_per_point", u64::from(args.requests))
            .u64("attack_per_mille", u64::from(args.attack_per_mille))
            .u64("seed", args.seed)
            .raw("points", &points)
            .raw("knee_rps", &self.knee_rps.map_or("null".to_string(), json_f64))
            .finish()
    }

    /// Detections observed across the whole sweep.
    #[must_use]
    pub fn total_detections(&self) -> u64 {
        self.points.iter().map(|p| p.detections).sum()
    }
}

fn io_err(context: &str, e: impl std::fmt::Display) -> String {
    format!("loadgen: {context}: {e}")
}

/// One round-trip of a control frame on a fresh connection.
fn control_roundtrip(addr: &str, frame: &Frame) -> Result<Frame, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
    write_frame(&mut stream, frame).map_err(|e| io_err("send", e))?;
    read_frame(&mut stream).map_err(|e| io_err("reply", e))
}

/// Fetches the daemon's health snapshot (app + scale drive payloads).
///
/// # Errors
///
/// Connection or protocol failure, or an unhealthy daemon.
pub fn fetch_health(addr: &str) -> Result<HealthReply, String> {
    match control_roundtrip(addr, &Frame::Health)? {
        Frame::HealthReply(h) => Ok(h),
        other => Err(format!("loadgen: expected HealthReply, got {other:?}")),
    }
}

/// Asks the daemon to drain and exit.
///
/// # Errors
///
/// Connection or protocol failure, or a `ControlErr` reply.
pub fn send_shutdown(addr: &str) -> Result<(), String> {
    match control_roundtrip(addr, &Frame::Shutdown)? {
        Frame::ControlOk { .. } => Ok(()),
        other => Err(format!("loadgen: shutdown refused: {other:?}")),
    }
}

#[derive(Default)]
struct Collected {
    admitted: u64,
    rejected: u64,
    served: u64,
    detections: u64,
    quarantined: u64,
    hist: Histogram,
    last_response_at: Option<Instant>,
}

fn run_point(
    addr: &str,
    rate: f64,
    args: &LoadgenArgs,
    payloads: &[(bool, Vec<u8>)],
) -> Result<SweepPoint, String> {
    let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
    let mut write_half = stream.try_clone().map_err(|e| io_err("clone socket", e))?;
    let mut read_half = stream.try_clone().map_err(|e| io_err("clone socket", e))?;
    let pending: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let collected: Arc<Mutex<Collected>> = Arc::new(Mutex::new(Collected::default()));

    let reader = {
        let pending = Arc::clone(&pending);
        let collected = Arc::clone(&collected);
        std::thread::spawn(move || loop {
            match read_frame(&mut read_half) {
                Ok(Frame::Response { id, verdict, .. }) => {
                    let sent_at = pending.lock().expect("pending lock").remove(&id);
                    let mut c = collected.lock().expect("collected lock");
                    c.admitted += 1;
                    c.last_response_at = Some(Instant::now());
                    if let Some(at) = sent_at {
                        c.hist.record(at.elapsed().as_micros() as u64);
                    }
                    match verdict {
                        Verdict::Served => c.served += 1,
                        Verdict::DetectedMicro | Verdict::DetectedMacro => c.detections += 1,
                        Verdict::Quarantined => c.quarantined += 1,
                    }
                }
                Ok(Frame::Rejected { id, .. }) => {
                    pending.lock().expect("pending lock").remove(&id);
                    let mut c = collected.lock().expect("collected lock");
                    c.rejected += 1;
                    c.last_response_at = Some(Instant::now());
                }
                Ok(_) => {}
                Err(_) => break,
            }
        })
    };

    let start = Instant::now();
    for (i, (malicious, data)) in payloads.iter().enumerate() {
        let target = start + Duration::from_secs_f64(i as f64 / rate);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        // Open loop: if we are behind schedule we send immediately and
        // never try to "catch up" by bursting ahead of real time.
        let id = i as u64;
        pending.lock().expect("pending lock").insert(id, Instant::now());
        let frame = Frame::Request { id, malicious: *malicious, data: data.clone() };
        write_frame(&mut write_half, &frame).map_err(|e| io_err("send request", e))?;
    }
    let _ = write_half.flush();

    let deadline = Instant::now() + Duration::from_millis(args.drain_timeout_ms);
    while Instant::now() < deadline {
        if pending.lock().expect("pending lock").is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Unblock the reader (a mid-frame read timeout would desync the
    // stream; a shutdown gives it a clean error instead).
    let _ = stream.shutdown(Shutdown::Both);
    let _ = reader.join();

    let lost = pending.lock().expect("pending lock").len() as u64;
    let c = collected.lock().expect("collected lock");
    let span = c.last_response_at.map_or_else(|| start.elapsed(), |t| t - start);
    let responses = c.admitted + c.rejected;
    let achieved_rps =
        if span.as_secs_f64() > 0.0 { responses as f64 / span.as_secs_f64() } else { 0.0 };
    Ok(SweepPoint {
        offered_rps: rate,
        sent: payloads.len() as u64,
        admitted: c.admitted,
        rejected: c.rejected,
        lost,
        served: c.served,
        detections: c.detections,
        quarantined: c.quarantined,
        achieved_rps,
        wall_us: c.hist.summary(),
    })
}

/// Runs the whole sweep: health fetch, one connection per offered rate,
/// knee computation, optional JSON dump / shutdown / assertion.
///
/// # Errors
///
/// Connection or protocol failure, an unwritable `--out` path, or a
/// failed `--assert-min-detections`.
pub fn run_loadgen(args: &LoadgenArgs) -> Result<LoadgenReport, String> {
    let health = fetch_health(&args.addr)?;
    if !health.ok {
        return Err("loadgen: daemon reports no live shards".into());
    }
    let app = app_by_name(&health.app)
        .ok_or_else(|| format!("loadgen: daemon runs unknown app {:?}", health.app))?;
    let image = build_app_scaled(app, health.scale);
    let attacks = detectable_attack_suite(&image);
    println!(
        "loadgen: {} @ scale {} ({} live shards), sweeping {} rates x {} requests",
        health.app,
        health.scale,
        health.shards_live,
        args.rates.len(),
        args.requests
    );

    let mut rng = Rng::seed_from_u64(args.seed);
    let mut points = Vec::new();
    for &rate in &args.rates {
        // Payloads are pre-built so pacing jitter never includes
        // payload-construction time.
        let payloads: Vec<(bool, Vec<u8>)> = (0..args.requests)
            .map(|_| {
                let malicious = rng.ratio(args.attack_per_mille, 1000) && !attacks.is_empty();
                let data = if malicious {
                    attack_request(*rng.pick(&attacks), &image)
                } else {
                    benign_request(rng.gen_u8(), rng.gen_u8())
                };
                (malicious, data)
            })
            .collect();
        let point = run_point(&args.addr, rate, args, &payloads)?;
        println!(
            "loadgen: offered {:>7.1}/s -> admitted {} rejected {} lost {} p99 {}us",
            point.offered_rps, point.admitted, point.rejected, point.lost, point.wall_us.p99
        );
        points.push(point);
    }

    let knee_rps = points
        .iter()
        .filter(|p| p.sent > 0 && (p.rejected as f64 / p.sent as f64) <= 0.01 && p.lost == 0)
        .map(|p| p.offered_rps)
        .fold(None, |best: Option<f64>, r| Some(best.map_or(r, |b| b.max(r))));

    let report = LoadgenReport { health, points, knee_rps };
    if let Some(path) = &args.out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| io_err("create out dir", e))?;
            }
        }
        std::fs::write(path, report.to_json(args) + "\n").map_err(|e| io_err("write out", e))?;
        println!("loadgen: wrote {}", path.display());
    }
    if args.shutdown {
        send_shutdown(&args.addr)?;
        println!("loadgen: daemon acknowledged shutdown");
    }
    if let Some(min) = args.assert_min_detections {
        let got = report.total_detections();
        if got < min {
            return Err(format!("loadgen: expected at least {min} detections, observed {got}"));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_has_fixed_shape() {
        let args = LoadgenArgs {
            addr: "x".into(),
            rates: vec![1.0],
            requests: 4,
            attack_per_mille: 0,
            seed: 7,
            out: None,
            quick: false,
            shutdown: false,
            assert_min_detections: None,
            drain_timeout_ms: 1,
        };
        let report = LoadgenReport {
            health: HealthReply {
                ok: true,
                app: "httpd".into(),
                scale: 40,
                shards_live: 2,
                shards_draining: 0,
                served: 0,
                detections: 0,
                revivals: 0,
                quarantined: 0,
                rejected: 0,
                replicas: 1,
                divergences: 0,
                divergent_masked: 0,
                rejuvenations: 0,
                detection_insns: 0,
            },
            points: vec![SweepPoint {
                offered_rps: 1.0,
                sent: 4,
                admitted: 4,
                rejected: 0,
                lost: 0,
                served: 4,
                detections: 0,
                quarantined: 0,
                achieved_rps: 1.0,
                wall_us: Histogram::new().summary(),
            }],
            knee_rps: Some(1.0),
        };
        let json = report.to_json(&args);
        for key in
            ["\"app\"", "\"points\"", "\"knee_rps\"", "\"rejection_ratio\"", "\"wall_us_p99\""]
        {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let none = LoadgenReport { knee_rps: None, ..report };
        assert!(none.to_json(&args).contains("\"knee_rps\":null"));
    }
}
