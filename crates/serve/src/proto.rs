//! The `fleetd` wire protocol: length-prefixed, CRC-protected binary
//! frames over TCP.
//!
//! Framing mirrors the persist journal's hostile-input discipline:
//!
//! ```text
//! u32 payload_len | u32 crc32(payload) | payload
//! ```
//!
//! The length is validated against [`MAX_FRAME`] *before* any
//! allocation, so a hostile peer can never trigger an absurd buffer;
//! the CRC catches corruption; and every decode failure is a typed
//! [`FrameError`], never a panic. The first payload byte is the frame
//! kind; the rest is read with the length-checked
//! [`indra_persist::WireReader`] primitives.

use std::io::{Read, Write};

use indra_persist::{crc32, PersistError, WireReader, WireWriter};

/// Hard ceiling on one frame's payload size (1 MiB). Checked before
/// allocating; an oversized length is a fatal protocol error.
pub const MAX_FRAME: u32 = 1 << 20;

/// Hard ceiling on one request's data payload — comfortably above any
/// request the workload generator emits, far below [`MAX_FRAME`].
pub const MAX_REQUEST_DATA: u32 = 1 << 16;

/// Typed wire-protocol failure. Never a panic, never an unbounded
/// allocation — the hostile-length discipline of `crates/persist`.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket/file I/O failed.
    Io(std::io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
    /// The payload did not match its CRC.
    BadCrc {
        /// CRC stored in the frame header.
        stored: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// The frame kind byte is not one this protocol defines.
    UnknownKind(u8),
    /// The payload was shorter than its kind requires.
    Truncated {
        /// Which field ran out of bytes.
        context: &'static str,
    },
    /// The payload decoded to something structurally invalid.
    Malformed {
        /// Which field was invalid.
        context: &'static str,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::BadCrc { stored, computed } => {
                write!(f, "frame crc mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Truncated { context } => write!(f, "frame truncated at {context}"),
            FrameError::Malformed { context } => write!(f, "frame malformed at {context}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

impl From<PersistError> for FrameError {
    fn from(e: PersistError) -> FrameError {
        match e {
            PersistError::Truncated { context } => FrameError::Truncated { context },
            PersistError::Corrupt { context } => FrameError::Malformed { context },
            _ => FrameError::Malformed { context: "frame payload" },
        }
    }
}

/// The verdict a shard reached on one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Served normally (response produced).
    Served,
    /// Attack detected; micro rollback (per-request) recovered.
    DetectedMicro,
    /// Attack detected; macro (application checkpoint) recovery ran.
    DetectedMacro,
    /// The request proved poisonous (killed its shard twice) and was
    /// quarantined — the shard revived without it.
    Quarantined,
}

impl Verdict {
    fn tag(self) -> u8 {
        match self {
            Verdict::Served => 0,
            Verdict::DetectedMicro => 1,
            Verdict::DetectedMacro => 2,
            Verdict::Quarantined => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Verdict, FrameError> {
        Ok(match tag {
            0 => Verdict::Served,
            1 => Verdict::DetectedMicro,
            2 => Verdict::DetectedMacro,
            3 => Verdict::Quarantined,
            _ => return Err(FrameError::Malformed { context: "verdict tag" }),
        })
    }
}

/// Why a request was turned away at admission (the 429 of this
/// protocol: typed, immediate, never a silent drop or unbounded queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Every live shard's ingress queue is at its depth watermark.
    QueueFull,
    /// No shard is live (all draining or drained).
    NoShards,
    /// The request payload exceeds [`MAX_REQUEST_DATA`].
    TooLarge,
}

impl RejectReason {
    fn tag(self) -> u8 {
        match self {
            RejectReason::QueueFull => 0,
            RejectReason::NoShards => 1,
            RejectReason::TooLarge => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<RejectReason, FrameError> {
        Ok(match tag {
            0 => RejectReason::QueueFull,
            1 => RejectReason::NoShards,
            2 => RejectReason::TooLarge,
            _ => return Err(FrameError::Malformed { context: "reject reason tag" }),
        })
    }
}

/// Daemon health snapshot (the `HEALTH` control reply).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReply {
    /// At least one shard is live and accepting requests.
    pub ok: bool,
    /// The service app every shard runs (clients build matching
    /// payloads from this + `scale`).
    pub app: String,
    /// Work-scale divisor of the deployed service images.
    pub scale: u32,
    /// Shards currently accepting requests.
    pub shards_live: u32,
    /// Shards draining (checkpoint-backed scale-down in progress).
    pub shards_draining: u32,
    /// Requests served since startup.
    pub served: u64,
    /// Detections (recovery episodes) since startup.
    pub detections: u64,
    /// Worker revivals (engine rebuilds after a death) since startup.
    pub revivals: u64,
    /// Requests quarantined as poison since startup.
    pub quarantined: u64,
    /// Requests rejected at admission since startup.
    pub rejected: u64,
    /// Replicas per shard (1 = unreplicated). Wire extension: absent on
    /// frames from older daemons, decoded as 1.
    pub replicas: u32,
    /// Replica-vote divergences since startup (extension; default 0).
    pub divergences: u64,
    /// Divergent replicas masked and rebuilt from the primary's durable
    /// history (extension; default 0).
    pub divergent_masked: u64,
    /// Scheduled proactive replica rejuvenations (extension; default 0).
    pub rejuvenations: u64,
    /// Instructions attackers got retired before detection, summed over
    /// recovery episodes — the fleet-wide detection-latency counter the
    /// red-team campaign scores against (extension; default 0).
    pub detection_insns: u64,
}

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → daemon: one service request.
    Request {
        /// Client-chosen id, echoed on the response.
        id: u64,
        /// Ground-truth malicious tag (the load generator knows what it
        /// sent; the daemon uses it only for accounting, never for
        /// detection).
        malicious: bool,
        /// Raw request payload, handed to the simulated service.
        data: Vec<u8>,
    },
    /// Client → daemon: request the service-level stats JSON.
    Stats,
    /// Client → daemon: request a health snapshot.
    Health,
    /// Client → daemon: drain one shard (checkpoint + stop accepting).
    Drain {
        /// Shard index to drain.
        shard: u32,
    },
    /// Client → daemon: scale the live shard count up or down.
    Scale {
        /// Target live shard count.
        shards: u32,
    },
    /// Client → daemon: drain everything and exit gracefully.
    Shutdown,
    /// Daemon → client: the shard's answer to a `Request`.
    Response {
        /// Echoed client id.
        id: u64,
        /// Shard that served it.
        shard: u32,
        /// What happened.
        verdict: Verdict,
        /// Delivery-to-response resurrectee cycles (0 unless `Served`).
        latency_cycles: u64,
    },
    /// Daemon → client: the request was not admitted.
    Rejected {
        /// Echoed client id.
        id: u64,
        /// Why.
        reason: RejectReason,
    },
    /// Daemon → client: service-level stats as JSON.
    StatsReply {
        /// The stats document.
        json: String,
    },
    /// Daemon → client: health snapshot.
    HealthReply(HealthReply),
    /// Daemon → client: a control frame succeeded.
    ControlOk {
        /// Human-readable detail.
        detail: String,
    },
    /// Daemon → client: a control frame failed.
    ControlErr {
        /// What went wrong.
        msg: String,
    },
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut w = WireWriter::new();
    match frame {
        Frame::Request { id, malicious, data } => {
            w.u8(1);
            w.u64(*id);
            w.bool(*malicious);
            w.bytes(data);
        }
        Frame::Stats => w.u8(2),
        Frame::Health => w.u8(3),
        Frame::Drain { shard } => {
            w.u8(4);
            w.u32(*shard);
        }
        Frame::Scale { shards } => {
            w.u8(5);
            w.u32(*shards);
        }
        Frame::Shutdown => w.u8(6),
        Frame::Response { id, shard, verdict, latency_cycles } => {
            w.u8(16);
            w.u64(*id);
            w.u32(*shard);
            w.u8(verdict.tag());
            w.u64(*latency_cycles);
        }
        Frame::Rejected { id, reason } => {
            w.u8(17);
            w.u64(*id);
            w.u8(reason.tag());
        }
        Frame::StatsReply { json } => {
            w.u8(18);
            w.str(json);
        }
        Frame::HealthReply(h) => {
            w.u8(19);
            w.bool(h.ok);
            w.str(&h.app);
            w.u32(h.scale);
            w.u32(h.shards_live);
            w.u32(h.shards_draining);
            w.u64(h.served);
            w.u64(h.detections);
            w.u64(h.revivals);
            w.u64(h.quarantined);
            w.u64(h.rejected);
            // Replica-group extension: appended after every legacy
            // field; the decoder reads it only when bytes remain, so
            // legacy payloads that end at `rejected` still decode.
            w.u32(h.replicas);
            w.u64(h.divergences);
            w.u64(h.divergent_masked);
            w.u64(h.rejuvenations);
            // Detection-latency extension: a second tier appended after
            // the replica block, read only when bytes remain past it.
            w.u64(h.detection_insns);
        }
        Frame::ControlOk { detail } => {
            w.u8(20);
            w.str(detail);
        }
        Frame::ControlErr { msg } => {
            w.u8(21);
            w.str(msg);
        }
    }
    w.finish()
}

/// Decodes one frame payload (the bytes *after* the length/CRC header).
///
/// # Errors
///
/// Typed [`FrameError`] on any structural problem; never panics.
pub fn decode_payload(payload: &[u8]) -> Result<Frame, FrameError> {
    let mut r = WireReader::new(payload);
    let kind = r.u8("frame kind")?;
    let frame = match kind {
        1 => {
            let id = r.u64("request id")?;
            let malicious = r.bool("request malicious")?;
            let data = r.bytes("request data")?;
            if data.len() > MAX_REQUEST_DATA as usize {
                return Err(FrameError::Malformed { context: "request data too large" });
            }
            Frame::Request { id, malicious, data: data.to_vec() }
        }
        2 => Frame::Stats,
        3 => Frame::Health,
        4 => Frame::Drain { shard: r.u32("drain shard")? },
        5 => Frame::Scale { shards: r.u32("scale target")? },
        6 => Frame::Shutdown,
        16 => Frame::Response {
            id: r.u64("response id")?,
            shard: r.u32("response shard")?,
            verdict: Verdict::from_tag(r.u8("response verdict")?)?,
            latency_cycles: r.u64("response latency")?,
        },
        17 => Frame::Rejected {
            id: r.u64("rejected id")?,
            reason: RejectReason::from_tag(r.u8("rejected reason")?)?,
        },
        18 => Frame::StatsReply { json: r.str("stats json")? },
        19 => {
            let mut h = HealthReply {
                ok: r.bool("health ok")?,
                app: r.str("health app")?,
                scale: r.u32("health scale")?,
                shards_live: r.u32("health live")?,
                shards_draining: r.u32("health draining")?,
                served: r.u64("health served")?,
                detections: r.u64("health detections")?,
                revivals: r.u64("health revivals")?,
                quarantined: r.u64("health quarantined")?,
                rejected: r.u64("health rejected")?,
                replicas: 1,
                divergences: 0,
                divergent_masked: 0,
                rejuvenations: 0,
                detection_insns: 0,
            };
            // Replica-group extension: present only on frames from
            // replica-aware daemons. A legacy payload ends here and
            // keeps the defaults; a *partial* extension is typed
            // truncation like any other short field.
            if r.remaining() > 0 {
                h.replicas = r.u32("health replicas")?;
                h.divergences = r.u64("health divergences")?;
                h.divergent_masked = r.u64("health divergent masked")?;
                h.rejuvenations = r.u64("health rejuvenations")?;
            }
            // Detection-latency extension: replica-era daemons end at
            // `rejuvenations` and keep the default; partial bytes are
            // typed truncation like any other short field.
            if r.remaining() > 0 {
                h.detection_insns = r.u64("health detection insns")?;
            }
            Frame::HealthReply(h)
        }
        20 => Frame::ControlOk { detail: r.str("control detail")? },
        21 => Frame::ControlErr { msg: r.str("control error")? },
        other => return Err(FrameError::UnknownKind(other)),
    };
    r.expect_exhausted("frame trailing bytes")?;
    Ok(frame)
}

/// Encodes a full wire frame (header + payload), ready to write.
#[must_use]
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = encode_payload(frame);
    let len = u32::try_from(payload.len()).expect("frame payload fits u32");
    assert!(len <= MAX_FRAME, "encoder produced an oversized frame");
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one frame from the front of `buf`, returning it plus the
/// bytes consumed. The length prefix is validated against [`MAX_FRAME`]
/// and the bytes actually present *before* anything is allocated.
///
/// # Errors
///
/// [`FrameError::Truncated`] when the buffer holds less than one whole
/// frame; other variants as the frame decodes.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < 8 {
        return Err(FrameError::Truncated { context: "frame header" });
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("sized"));
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len });
    }
    let stored = u32::from_le_bytes(buf[4..8].try_into().expect("sized"));
    let total = 8 + len as usize;
    if buf.len() < total {
        return Err(FrameError::Truncated { context: "frame payload" });
    }
    let payload = &buf[8..total];
    let computed = crc32(payload);
    if stored != computed {
        return Err(FrameError::BadCrc { stored, computed });
    }
    Ok((decode_payload(payload)?, total))
}

/// Reads one frame from a stream. A clean EOF before any header byte is
/// [`FrameError::Closed`]; EOF mid-frame is [`FrameError::Truncated`].
///
/// # Errors
///
/// Typed [`FrameError`] for I/O, framing and decode failures.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; 8];
    let mut got = 0usize;
    while got < 8 {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => return Err(FrameError::Truncated { context: "frame header" }),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("sized"));
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len });
    }
    let stored = u32::from_le_bytes(header[4..8].try_into().expect("sized"));
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            FrameError::Truncated { context: "frame payload" }
        } else {
            FrameError::Io(e)
        }
    })?;
    let computed = crc32(&payload);
    if stored != computed {
        return Err(FrameError::BadCrc { stored, computed });
    }
    decode_payload(&payload)
}

/// Writes one frame to a stream.
///
/// # Errors
///
/// I/O failure.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use indra_rng::forall;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Request { id: 7, malicious: true, data: vec![1, 2, 3] },
            Frame::Stats,
            Frame::Health,
            Frame::Drain { shard: 3 },
            Frame::Scale { shards: 9 },
            Frame::Shutdown,
            Frame::Response {
                id: 7,
                shard: 1,
                verdict: Verdict::DetectedMicro,
                latency_cycles: 42,
            },
            Frame::Rejected { id: 8, reason: RejectReason::QueueFull },
            Frame::StatsReply { json: "{\"served\":1}".into() },
            Frame::HealthReply(HealthReply {
                ok: true,
                app: "httpd".into(),
                scale: 40,
                shards_live: 2,
                shards_draining: 1,
                served: 10,
                detections: 2,
                revivals: 1,
                quarantined: 0,
                rejected: 3,
                replicas: 3,
                divergences: 4,
                divergent_masked: 2,
                rejuvenations: 5,
                detection_insns: 480,
            }),
            Frame::ControlOk { detail: "drained".into() },
            Frame::ControlErr { msg: "no such shard".into() },
        ]
    }

    #[test]
    fn roundtrip_every_kind() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            let (back, used) = decode_frame(&bytes).unwrap();
            assert_eq!(back, frame);
            assert_eq!(used, bytes.len());
            // And through the stream reader.
            let mut cursor = std::io::Cursor::new(bytes);
            assert_eq!(read_frame(&mut cursor).unwrap(), frame);
        }
    }

    #[test]
    fn truncation_at_every_cut_is_typed() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            for cut in 0..bytes.len() {
                match decode_frame(&bytes[..cut]) {
                    Err(FrameError::Truncated { .. }) => {}
                    other => panic!("cut {cut} of {frame:?}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = vec![];
        bytes.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(FrameError::Oversized { .. })));
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Oversized { .. })));
    }

    #[test]
    fn oversized_request_data_is_rejected() {
        let frame = Frame::Request {
            id: 1,
            malicious: false,
            data: vec![0; MAX_REQUEST_DATA as usize + 1],
        };
        let bytes = encode_frame(&frame);
        assert!(matches!(decode_frame(&bytes), Err(FrameError::Malformed { .. })));
    }

    #[test]
    fn crc_flip_is_detected_everywhere() {
        let frame = Frame::Request { id: 9, malicious: false, data: vec![5; 32] };
        let bytes = encode_frame(&frame);
        // Flip every payload byte in turn: always BadCrc (or, for the
        // stored-CRC bytes themselves, BadCrc too).
        for i in 4..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                matches!(decode_frame(&bad), Err(FrameError::BadCrc { .. })),
                "flip at {i} was not caught"
            );
        }
    }

    #[test]
    fn clean_eof_is_closed() {
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Err(FrameError::Closed)));
    }

    #[test]
    fn fuzz_random_bytes_never_panic() {
        forall("proto random bytes", 500, |rng| {
            let len = rng.range_u64(0, 160) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_u8()).collect();
            // Any result is fine; a panic or runaway allocation is not.
            let _ = decode_frame(&bytes);
            let mut cursor = std::io::Cursor::new(bytes);
            let _ = read_frame(&mut cursor);
        });
    }

    #[test]
    fn fuzz_valid_frames_survive_mutation_typed() {
        let frames = sample_frames();
        forall("proto frame mutation", 300, |rng| {
            let frame = &frames[rng.range_u64(0, frames.len() as u64) as usize];
            let mut bytes = encode_frame(frame);
            // Mutate 1–4 bytes anywhere in the frame.
            for _ in 0..rng.range_u64(1, 5) {
                let i = rng.range_u64(0, bytes.len() as u64) as usize;
                bytes[i] ^= rng.gen_u8() | 1;
            }
            match decode_frame(&bytes) {
                // Either it still decodes (mutation cancelled out /
                // mutated into another valid frame) or the error is
                // typed. Both fine; panics and hangs are not.
                Ok(_) | Err(_) => {}
            }
        });
    }

    /// A pre-replica `HEALTH_REPLY` payload (ends at `rejected`) with
    /// `tail` appended raw, wrapped in a valid frame header. `tail` is
    /// how the extension-decoder tests forge partial or hostile
    /// extensions without fighting the encoder.
    fn legacy_health_frame(tail: &[u8]) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u8(19);
        w.bool(true);
        w.str("httpd");
        w.u32(40);
        w.u32(2);
        w.u32(1);
        w.u64(10);
        w.u64(2);
        w.u64(1);
        w.u64(0);
        w.u64(3);
        let mut payload = w.finish();
        payload.extend_from_slice(tail);
        let len = u32::try_from(payload.len()).expect("test payload fits u32");
        let mut out = len.to_le_bytes().to_vec();
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    #[test]
    fn legacy_health_payload_decodes_with_replica_defaults() {
        // A daemon that predates the replica extension ends its payload
        // at `rejected`. The extended decoder must accept it and report
        // one (unreplicated) replica with zeroed counters.
        let bytes = legacy_health_frame(&[]);
        let (frame, used) = decode_frame(&bytes).expect("legacy payload decodes");
        assert_eq!(used, bytes.len());
        let Frame::HealthReply(h) = frame else { panic!("wrong kind: {frame:?}") };
        assert_eq!((h.replicas, h.divergences, h.divergent_masked, h.rejuvenations), (1, 0, 0, 0));
        assert_eq!((h.served, h.detections, h.revivals, h.rejected), (10, 2, 1, 3));
    }

    #[test]
    fn partial_health_extension_is_typed_truncation() {
        // The extension is all-or-nothing: a payload that carries *some*
        // extension bytes (the CRC is valid, so this is corruption above
        // the framing layer) must be typed truncation, never a default.
        let mut full = 3u32.to_le_bytes().to_vec();
        for v in [4u64, 2, 5] {
            full.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(full.len(), 28, "extension is u32 + 3 x u64");
        for cut in 1..full.len() {
            let bytes = legacy_health_frame(&full[..cut]);
            match decode_frame(&bytes) {
                Err(FrameError::Truncated { .. }) => {}
                other => panic!("extension cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn fuzz_health_extension_tail_is_typed() {
        // Random bytes after a legacy payload: a whole extension tier
        // (28 bytes replica, 36 bytes replica + detection latency)
        // decodes; anything else is a typed error. No length may panic
        // or mis-decode into defaults.
        forall("proto health extension tail", 300, |rng| {
            let len = rng.range_u64(0, 44) as usize;
            let tail: Vec<u8> = (0..len).map(|_| rng.gen_u8()).collect();
            let bytes = legacy_health_frame(&tail);
            match decode_frame(&bytes) {
                Ok((Frame::HealthReply(h), _)) => {
                    if len == 0 {
                        assert_eq!(h.replicas, 1, "legacy tail keeps defaults");
                    } else {
                        assert!(
                            len == 28 || len == 36,
                            "only whole extension tiers may decode, got {len}"
                        );
                    }
                }
                Ok((other, _)) => panic!("decoded into {other:?}"),
                Err(FrameError::Truncated { .. } | FrameError::Malformed { .. }) => {
                    assert_ne!(len, 0, "legacy payload must decode");
                    assert_ne!(len, 28, "whole replica extension must decode");
                    assert_ne!(len, 36, "whole two-tier extension must decode");
                }
                Err(e) => panic!("unexpected error class: {e}"),
            }
        });
    }

    #[test]
    fn fuzz_hostile_length_prefixes_never_allocate() {
        forall("proto hostile lengths", 300, |rng| {
            let claimed = rng.range_u64(0, u64::from(u32::MAX)) as u32;
            let mut bytes = claimed.to_le_bytes().to_vec();
            bytes.extend_from_slice(&rng.next_u64().to_le_bytes());
            match decode_frame(&bytes) {
                Err(
                    FrameError::Oversized { .. }
                    | FrameError::Truncated { .. }
                    | FrameError::BadCrc { .. }
                    | FrameError::Malformed { .. }
                    | FrameError::UnknownKind(_),
                ) => {}
                Ok(_) => {} // tiny claimed length that happened to parse
                Err(e) => panic!("unexpected error class: {e}"),
            }
        });
    }
}
