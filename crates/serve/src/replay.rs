//! Deterministic offline replay of a `fleetd` state directory.
//!
//! Replay is strictly read-only: it opens the store, decodes the
//! persisted [`EngineConfig`] from `serve.meta`, and re-runs every
//! shard's ingress log from a fresh engine — no checkpoints are read
//! (they are an *optimization* for live resume; replay is the ground
//! truth they are checked against) and nothing is written back. The
//! resulting [`indra_fleet::FleetStats`] is byte-identical to what the
//! live daemon reported, including runs that went through revivals,
//! quarantines, scale-ups and kill -9.

use std::path::Path;

use indra_bench::Histogram;
use indra_fleet::{aggregate_stats, FleetStats, ShardOutput};
use indra_persist::{read_ingress_log, PersistError, SnapshotStore, INGRESS_FILE};

use crate::daemon::{discover_shards, ServeError};
use crate::engine::{decode_engine_meta, ShardRunner};

/// Outcome of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Deterministic fleet stats rebuilt from the ingress logs.
    pub stats: FleetStats,
    /// Requests replayed across all shards.
    pub requests_replayed: u64,
    /// Shards replayed.
    pub shards: usize,
}

/// Replays every shard of a state directory and folds the fleet stats
/// exactly like [`crate::daemon::Daemon::stop`] does (shard order,
/// histogram over per-request cycles).
///
/// # Errors
///
/// Store/meta corruption, a foreign or non-dense ingress log, or a
/// shard whose image fails to deploy.
pub fn replay_state_dir(dir: impl AsRef<Path>) -> Result<ReplayOutcome, ServeError> {
    let store = SnapshotStore::open(dir.as_ref())?;
    let engine_cfg = decode_engine_meta(&store.read_meta()?)?;
    let shard_ids = discover_shards(store.root())?;
    let mut outputs: Vec<ShardOutput> = Vec::new();
    let mut requests_replayed = 0u64;
    for shard in shard_ids {
        let log_path = store.shard_dir(shard).join(INGRESS_FILE);
        let records = match std::fs::read(&log_path) {
            Ok(bytes) => {
                let contents = read_ingress_log(&bytes)?;
                if contents.shard != shard as u32 {
                    return Err(ServeError::Persist(PersistError::Corrupt {
                        context: "ingress log belongs to a different shard",
                    }));
                }
                contents.records
            }
            // A shard dir without a log admitted nothing (e.g. created
            // by a scale-up that never received traffic).
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        requests_replayed +=
            records.iter().filter(|r| r.kind == indra_persist::IngressKind::Request).count() as u64;
        // Replay-derived tombstones are discarded: the same deaths
        // already happened live and are in the log; a fresh one here
        // would mean live/replay divergence, which from_log's dense-seq
        // and positional-tombstone rules make impossible for logs this
        // daemon wrote.
        let (runner, _fresh) = ShardRunner::from_log(engine_cfg.clone(), shard, records, None)?;
        outputs.push(runner.finish(true));
    }
    let shards = outputs.len();
    let mut latency = Histogram::new();
    for out in &outputs {
        for s in &out.report.samples {
            latency.record(s.cycles);
        }
    }
    Ok(ReplayOutcome { stats: aggregate_stats(&outputs, latency), requests_replayed, shards })
}
