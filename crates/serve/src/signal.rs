//! Minimal std-only SIGINT/SIGTERM handling.
//!
//! The workspace builds with no external crates, so instead of a signal
//! crate this uses the one libc entry point the handlers need:
//! `signal(2)` with a handler that only stores to a static
//! `AtomicBool` (the async-signal-safe subset). Consumers poll the
//! flag — the fleet executor at run-slice boundaries
//! ([`indra_fleet::FleetConfig::shutdown`]), `fleetd`'s main loop
//! between health polls — so delivery timing never races anything.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on the first SIGINT or SIGTERM.
pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

extern "C" fn handle(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM handlers and returns the flag they
/// raise. Safe to call more than once. The second signal still lands
/// in the same handler, so a graceful drain cannot be interrupted into
/// a torn store by mashing ctrl-C (SIGKILL remains available and is
/// exactly what the ingress log + checkpoints are designed to survive).
pub fn install_shutdown_handler() -> &'static AtomicBool {
    unsafe {
        signal(SIGINT, handle);
        signal(SIGTERM, handle);
    }
    &SHUTDOWN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_raises_the_flag() {
        let flag = install_shutdown_handler();
        assert!(!flag.load(Ordering::SeqCst));
        handle(SIGINT);
        assert!(flag.load(Ordering::SeqCst));
        SHUTDOWN.store(false, Ordering::SeqCst);
    }
}
