//! The code-origin CAM filter (§3.2.2, Fig. 10).
//!
//! Code-origin verification fires on every IL1 fill; most fills come from
//! the same few code pages, so the paper adds a small content-addressable
//! memory of recently verified code-page addresses in the resurrectee.
//! Only fills whose page misses the CAM are forwarded to the monitor —
//! with 32 entries the paper filters out more than 90% of checks
//! (Fig. 10: ~92% at 32 entries, ~95% at 64).
//!
//! On rollback or page-attribute change the resurrector invalidates the
//! CAM so stale "already verified" state cannot mask newly injected code.

/// CAM filter statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CamStats {
    /// IL1 fills examined.
    pub lookups: u64,
    /// Fills filtered out (page recently verified).
    pub hits: u64,
}

impl CamStats {
    /// Fraction of checks that still reach the monitor, in `[0, 1]`
    /// (the y-axis of Fig. 10).
    #[must_use]
    pub fn sent_fraction(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            (self.lookups - self.hits) as f64 / self.lookups as f64
        }
    }
}

/// A fully-associative LRU array of recently verified code-page addresses.
#[derive(Debug)]
pub struct CamFilter {
    entries: Vec<(u32, u64)>, // (page address, last-use stamp)
    capacity: usize,
    stamp: u64,
    stats: CamStats,
}

impl CamFilter {
    /// Creates an empty filter with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero (use [`CamFilter::disabled`] to model
    /// a machine without the filter).
    #[must_use]
    pub fn new(capacity: usize) -> CamFilter {
        assert!(capacity > 0, "CAM needs at least one entry");
        CamFilter {
            entries: Vec::with_capacity(capacity),
            capacity,
            stamp: 0,
            stats: CamStats::default(),
        }
    }

    /// A filter that never hits — every code fill goes to the monitor.
    #[must_use]
    pub fn disabled() -> CamFilter {
        CamFilter { entries: Vec::new(), capacity: 0, stamp: 0, stats: CamStats::default() }
    }

    /// Entry capacity (zero = disabled).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `page_addr`; on a miss, inserts it (evicting LRU) and
    /// returns `false` meaning *the check must be sent to the monitor*.
    pub fn filter(&mut self, page_addr: u32) -> bool {
        self.stamp += 1;
        self.stats.lookups += 1;
        if self.capacity == 0 {
            return false;
        }
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page_addr) {
            e.1 = self.stamp;
            self.stats.hits += 1;
            return true;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page_addr, self.stamp));
        false
    }

    /// Invalidates everything (rollback / page-attribute change).
    pub fn invalidate(&mut self) {
        self.entries.clear();
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CamStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CamStats::default();
    }

    /// Captures the filter's full mutable state (entries, LRU stamps,
    /// stats).
    #[must_use]
    pub fn save_state(&self) -> CamState {
        CamState { entries: self.entries.clone(), stamp: self.stamp, stats: self.stats }
    }

    /// Restores state captured by [`CamFilter::save_state`]. The entry
    /// order matters (eviction uses `swap_remove`), so it is preserved
    /// verbatim.
    pub fn restore_state(&mut self, state: &CamState) {
        self.entries.clone_from(&state.entries);
        self.stamp = state.stamp;
        self.stats = state.stats;
    }
}

/// Complete mutable state of a [`CamFilter`], captured by
/// [`CamFilter::save_state`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CamState {
    /// `(page address, last-use stamp)` pairs in storage order.
    pub entries: Vec<(u32, u64)>,
    /// LRU stamp counter.
    pub stamp: u64,
    /// Accumulated statistics.
    pub stats: CamStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_pages_filtered() {
        let mut c = CamFilter::new(4);
        assert!(!c.filter(0x1000), "first sighting goes to the monitor");
        assert!(c.filter(0x1000), "second sighting filtered");
        assert!(c.filter(0x1000));
        let s = c.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.hits, 2);
        assert!((s.sent_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction() {
        let mut c = CamFilter::new(2);
        c.filter(0xA000);
        c.filter(0xB000);
        c.filter(0xA000); // refresh A
        c.filter(0xC000); // evicts B
        assert!(c.filter(0xA000), "A retained");
        assert!(!c.filter(0xB000), "B evicted");
    }

    #[test]
    fn invalidate_forces_rechecks() {
        let mut c = CamFilter::new(4);
        c.filter(0x1000);
        assert!(c.filter(0x1000));
        c.invalidate();
        assert!(!c.filter(0x1000), "post-rollback the page must be re-verified");
    }

    #[test]
    fn disabled_filter_sends_everything() {
        let mut c = CamFilter::disabled();
        assert!(!c.filter(0x1000));
        assert!(!c.filter(0x1000));
        assert!((c.stats().sent_fraction() - 1.0).abs() < 1e-9);
    }
}
