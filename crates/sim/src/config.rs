//! Machine and core configuration (Table 4 of the paper).

use indra_mem::{CoreMemConfig, DramConfig};

/// Pipeline parameters of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Fetch/decode width (Table 4: 8). Sequential instructions within one
    /// already-fetched IL1 line are delivered without a new fetch access.
    pub fetch_width: u32,
    /// Issue/commit width (Table 4: 8). Up to this many simple ops retire
    /// per accounted cycle; any stall closes the group.
    pub issue_width: u32,
    /// Cycles lost on a taken control transfer (front-end redirect).
    pub redirect_penalty: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig { fetch_width: 8, issue_width: 8, redirect_penalty: 3 }
    }
}

/// Role of a core in INDRA's asymmetric configuration (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreRole {
    /// High-privilege monitor core: full physical-memory visibility, runs
    /// the runtime system from flash, no network exposure.
    Resurrector,
    /// Low-privilege service core: access restricted by the memory
    /// watchdog to its assigned physical ranges.
    Resurrectee,
}

/// Whole-machine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Role of each core; index = core id. The paper's evaluation uses
    /// `[Resurrector, Resurrectee]` (a dual-core).
    pub cores: Vec<CoreRole>,
    /// Pipeline parameters (shared by all cores).
    pub core: CoreConfig,
    /// Per-core cache/TLB hierarchy.
    pub mem: CoreMemConfig,
    /// Shared SDRAM.
    pub dram: DramConfig,
    /// Physical frames available to the frame allocator.
    pub phys_frames: u32,
    /// Entries in the resurrectee→resurrector trace FIFO (Fig. 12 sweeps
    /// this; 32 is the knee).
    pub fifo_entries: usize,
    /// Entries in the code-origin CAM filter (Fig. 10: 32 or 64).
    pub cam_entries: usize,
    /// Commit-stage cycles charged to a monitored core per trace event it
    /// emits (trace-packet formation and FIFO port arbitration). The
    /// steady, per-event component of Fig. 11's monitoring overhead.
    pub trace_push_cycles: u32,
    /// Whether page tables enforce no-execute on data pages. The paper's
    /// 2006-era x86 had no NX bit — code injection is architecturally
    /// possible and INDRA's code-origin inspection is the defense (and,
    /// as §3.2.2 notes, even an NX flag "does not prevent tampering of
    /// the execution flag"). Defaults to `false` to match.
    pub enforce_nx: bool,
    /// Host-side fast paths: the predecoded-instruction cache and the
    /// translation micro-cache. Simulated behavior — cycle counts,
    /// stats, events, faults, snapshots — is byte-identical with this
    /// off; the flag exists so equivalence tests can force the slow
    /// reference path. Defaults to `true`.
    pub fast_paths: bool,
    /// Superblock execution engine: hot basic blocks are decoded into
    /// pre-validated micro-op traces and executed with batched cycle-,
    /// cache- and event-accounting (falling back to the interpreter at
    /// block exits, faults, traps and monitor pressure). Host-side only:
    /// simulated behavior is byte-identical with this off. Independent
    /// of `fast_paths`. Defaults to `true`.
    pub superblocks: bool,
}

impl Default for MachineConfig {
    /// The paper's evaluated dual-core INDRA machine.
    fn default() -> Self {
        MachineConfig {
            cores: vec![CoreRole::Resurrector, CoreRole::Resurrectee],
            core: CoreConfig::default(),
            mem: CoreMemConfig::default(),
            dram: DramConfig::default(),
            phys_frames: 64 * 1024, // 256 MiB
            fifo_entries: 32,
            cam_entries: 32,
            trace_push_cycles: 1,
            enforce_nx: false,
            fast_paths: true,
            superblocks: true,
        }
    }
}

impl MachineConfig {
    /// A symmetric configuration (reconfigurability, §2.3.4): all cores are
    /// equal-privilege resurrectees and no monitoring runs.
    #[must_use]
    pub fn symmetric(n_cores: usize) -> MachineConfig {
        MachineConfig { cores: vec![CoreRole::Resurrectee; n_cores], ..MachineConfig::default() }
    }

    /// Index of the first resurrector core, if the machine has one.
    #[must_use]
    pub fn resurrector(&self) -> Option<usize> {
        self.cores.iter().position(|r| *r == CoreRole::Resurrector)
    }

    /// Indices of all resurrectee cores.
    #[must_use]
    pub fn resurrectees(&self) -> Vec<usize> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == CoreRole::Resurrectee)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_dual_core_asymmetric() {
        let c = MachineConfig::default();
        assert_eq!(c.cores.len(), 2);
        assert_eq!(c.resurrector(), Some(0));
        assert_eq!(c.resurrectees(), vec![1]);
    }

    #[test]
    fn symmetric_has_no_resurrector() {
        let c = MachineConfig::symmetric(4);
        assert_eq!(c.resurrector(), None);
        assert_eq!(c.resurrectees().len(), 4);
    }
}
