//! The cycle-accounting core model.
//!
//! An in-order superscalar approximation in the SimpleScalar tradition:
//! instructions execute one at a time with architecturally exact
//! semantics, while cycle accounting models an `issue_width`-wide commit
//! group (Table 4: 8-wide) that any stall — IL1 refill, data miss, taken
//! control transfer — closes. Absolute cycle counts are not the point;
//! the *relative* costs that drive the paper's figures (monitor
//! synchronization, backup stalls, rollback work) are.

use indra_isa::{ControlClass, Instruction, Reg, Width};
use indra_mem::{CoreMemory, PhysicalMemory, Sdram, PAGE_SIZE};

use crate::superblock::Superblock;
use crate::{
    AccessKind, AddressSpace, BackupHook, CoreConfig, EventBuf, Fault, MemoryWatchdog,
    PredecodeCache, SuperblockCache, TraceEvent,
};

/// Architectural register state of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuContext {
    /// The 32 general-purpose registers (`regs[0]` reads as zero).
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
}

impl CpuContext {
    /// Reads a register (`r0` is hard-wired to zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() as usize]
        }
    }

    /// Writes a register (writes to `r0` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }
}

/// What happened when the core stepped one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired normally.
    Executed,
    /// The core executed `halt`.
    Halted,
    /// The core reached a `syscall` and is waiting for the OS. The PC
    /// still points at the syscall; call
    /// [`Core::finish_syscall`] to resume.
    Syscall {
        /// The syscall code.
        code: u16,
    },
    /// The core faulted; PC points at the faulting instruction.
    Fault(Fault),
}

/// The result of stepping one instruction.
#[derive(Debug, Clone, Copy)]
pub struct StepResult {
    /// Outcome classification.
    pub outcome: StepOutcome,
    /// Trace events produced (0–2 per instruction), held inline — the
    /// hot loop never allocates.
    pub events: EventBuf,
}

/// Everything a core needs from the machine to execute one instruction.
pub struct StepEnv<'a> {
    /// The active address space for this core.
    pub space: &'a AddressSpace,
    /// The core's private cache/TLB hierarchy.
    pub mem: &'a mut CoreMemory,
    /// Shared DRAM.
    pub dram: &'a mut Sdram,
    /// Shared physical memory contents.
    pub phys: &'a mut PhysicalMemory,
    /// The INDRA memory watchdog.
    pub watchdog: &'a mut MemoryWatchdog,
    /// The active backup/checkpoint engine hook.
    pub hook: &'a mut dyn BackupHook,
    /// This core's predecoded-instruction cache.
    pub predecode: &'a mut PredecodeCache,
    /// This core's superblock translation cache (the running block, if
    /// any, is held *outside* the cache for the duration of its run).
    pub superblocks: &'a mut SuperblockCache,
    /// This core's id (for watchdog tagging).
    pub core_id: usize,
}

/// Why [`Core::run_block`] stopped executing a superblock. Every variant
/// returns control to the interpreter with fully consistent state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockExit {
    /// The block's last instruction retired (normal exit).
    End,
    /// An instruction produced trace events; the machine must route them
    /// before anything else executes.
    Events,
    /// The caller's instruction budget was exhausted.
    Budget,
    /// A store landed inside this block's own bytes; the rewritten code
    /// must re-translate (and re-fetch through origin checks).
    SelfModified,
    /// A `syscall` retired; the PC is parked on it.
    Syscall {
        /// The syscall code.
        code: u16,
    },
    /// A `halt` retired.
    Halted,
    /// An instruction faulted; the PC points at it.
    Fault(Fault),
}

/// Outcome of executing one already-fetched, already-decoded instruction.
enum ExecOutcome {
    /// The instruction retired and the PC advanced; `store` records the
    /// physical range a committed store wrote, if any.
    Retired { store: Option<(u32, u32)> },
    /// A `syscall` retired (PC parked on it).
    Syscall { code: u16 },
    /// A `halt` retired.
    Halted,
    /// The instruction faulted; the caller charges the pipeline flush.
    Fault(Fault),
}

/// One processor core.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    ctx: CpuContext,
    asid: u16,
    halted: bool,
    stalled: bool,
    cycles: u64,
    retired: u64,
    group: u32,
    last_fetch_line: Option<u32>,
}

impl Core {
    /// Creates a core at PC 0, halted state cleared.
    #[must_use]
    pub fn new(cfg: CoreConfig) -> Core {
        Core {
            cfg,
            ctx: CpuContext::default(),
            asid: 0,
            halted: false,
            stalled: false,
            cycles: 0,
            retired: 0,
            group: 0,
            last_fetch_line: None,
        }
    }

    /// The core's architectural context.
    #[must_use]
    pub fn context(&self) -> CpuContext {
        self.ctx
    }

    /// Replaces the architectural context (process switch / rollback).
    pub fn set_context(&mut self, ctx: CpuContext) {
        self.ctx = ctx;
        self.last_fetch_line = None;
    }

    /// Reads one register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.ctx.reg(r)
    }

    /// Writes one register (syscall return values).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.ctx.set_reg(r, value);
    }

    /// Current PC.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.ctx.pc
    }

    /// Sets the PC (boot / recovery).
    pub fn set_pc(&mut self, pc: u32) {
        self.ctx.pc = pc;
        self.last_fetch_line = None;
    }

    /// The address-space tag the core stamps on its accesses.
    #[must_use]
    pub fn asid(&self) -> u16 {
        self.asid
    }

    /// Switches the active ASID (context switch).
    pub fn set_asid(&mut self, asid: u16) {
        self.asid = asid;
    }

    /// Whether the core has executed `halt`.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Clears the halt latch (reboot).
    pub fn clear_halt(&mut self) {
        self.halted = false;
    }

    /// Whether the resurrector has stalled this core.
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Stall/resume control line (§2.3.3: tight coupling lets the
    /// privileged core stall a corrupted resurrectee).
    pub fn set_stalled(&mut self, stalled: bool) {
        self.stalled = stalled;
    }

    /// Total cycles accounted to this core.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Adds externally imposed stall cycles (FIFO full, sync waits).
    pub fn add_stall_cycles(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.group = 0;
    }

    /// Instructions retired.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Completes a pending syscall: writes the return value (if any) into
    /// `a0` and advances past the `syscall` instruction.
    pub fn finish_syscall(&mut self, ret: Option<u32>) {
        if let Some(v) = ret {
            self.ctx.set_reg(Reg::A0, v);
        }
        self.ctx.pc = self.ctx.pc.wrapping_add(4);
        self.last_fetch_line = None;
    }

    /// Captures the core's full mutable state (context, mode latches and
    /// cycle accounting) so a thawed machine resumes mid-stream with
    /// identical timing.
    #[must_use]
    pub fn save_state(&self) -> CoreState {
        CoreState {
            ctx: self.ctx,
            asid: self.asid,
            halted: self.halted,
            stalled: self.stalled,
            cycles: self.cycles,
            retired: self.retired,
            group: self.group,
            last_fetch_line: self.last_fetch_line,
        }
    }

    /// Restores state captured by [`Core::save_state`].
    pub fn restore_state(&mut self, state: &CoreState) {
        self.ctx = state.ctx;
        self.asid = state.asid;
        self.halted = state.halted;
        self.stalled = state.stalled;
        self.cycles = state.cycles;
        self.retired = state.retired;
        self.group = state.group;
        self.last_fetch_line = state.last_fetch_line;
    }

    fn charge(&mut self, extra: u64) {
        // Close the current issue group on any stall.
        self.cycles += extra;
        self.group = 0;
    }

    fn retire_simple(&mut self) {
        self.group += 1;
        if self.group >= self.cfg.issue_width {
            self.cycles += 1;
            self.group = 0;
        }
        self.retired += 1;
    }

    /// Executes one instruction.
    ///
    /// On faults and syscalls the architectural state is left at the
    /// triggering instruction; callers decide how to proceed.
    pub fn step(&mut self, env: &mut StepEnv<'_>) -> StepResult {
        debug_assert!(!self.halted && !self.stalled, "machine must not step a stopped core");
        let mut events = EventBuf::new();
        let pc = self.ctx.pc;

        // --- fetch ---------------------------------------------------------
        let paddr = match env.space.translate(pc, AccessKind::Execute) {
            Ok(p) => p,
            Err(f) => return self.fault(f, events),
        };
        if let Err(f) = env.watchdog.check(env.core_id, paddr, AccessKind::Execute) {
            return self.fault(f, events);
        }
        let line = paddr & !31;
        let crossing = self.last_fetch_line != Some(line);
        let fetch = env.mem.fetch(self.asid, pc, paddr, env.dram);
        if crossing || fetch.il1_fill.is_some() {
            self.charge(u64::from(fetch.cycles));
        }
        self.last_fetch_line = Some(line);
        if fetch.il1_fill.is_some() {
            // Code origin check request; the machine runs it through the
            // CAM filter before it reaches the FIFO.
            events.push(TraceEvent::CodeFill { page_vaddr: pc & !(PAGE_SIZE - 1), pc });
        }

        // The raw word is read every fetch and compared against the
        // predecode entry's stored word, so a cached decode can never
        // outlive the bytes it came from, whatever path wrote them.
        let word = env.phys.read_u32(paddr);
        let inst = match env.predecode.lookup(paddr, word) {
            Some(i) => i,
            None => match Instruction::decode(word) {
                Ok(i) => {
                    env.predecode.insert(paddr, word, i);
                    i
                }
                Err(_) => return self.fault(Fault::IllegalInstruction { pc, word }, events),
            },
        };

        match self.execute_decoded(inst, pc, env, &mut events) {
            ExecOutcome::Retired { .. } => StepResult { outcome: StepOutcome::Executed, events },
            ExecOutcome::Syscall { code } => {
                StepResult { outcome: StepOutcome::Syscall { code }, events }
            }
            ExecOutcome::Halted => StepResult { outcome: StepOutcome::Halted, events },
            ExecOutcome::Fault(f) => self.fault(f, events),
        }
    }

    /// Executes one already-decoded instruction at `pc`: the execute half
    /// of [`Core::step`], shared verbatim with the superblock engine so
    /// batched and interpreted execution cannot diverge.
    fn execute_decoded(
        &mut self,
        inst: Instruction,
        pc: u32,
        env: &mut StepEnv<'_>,
        events: &mut EventBuf,
    ) -> ExecOutcome {
        let mut next_pc = pc.wrapping_add(4);
        let mut store = None;
        match inst {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.ctx.reg(rs1), self.ctx.reg(rs2));
                self.ctx.set_reg(rd, v);
                self.retire_simple();
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let v = op.apply(self.ctx.reg(rs1), imm as u32);
                self.ctx.set_reg(rd, v);
                self.retire_simple();
            }
            Instruction::Lui { rd, imm } => {
                self.ctx.set_reg(rd, imm << 16);
                self.retire_simple();
            }
            Instruction::Load { width, signed, rd, rs1, offset } => {
                let vaddr = self.ctx.reg(rs1).wrapping_add(offset as u32);
                let dpaddr = match env.space.translate(vaddr, AccessKind::Read) {
                    Ok(p) => p,
                    Err(f) => return ExecOutcome::Fault(f),
                };
                if let Err(f) = env.watchdog.check(env.core_id, dpaddr, AccessKind::Read) {
                    return ExecOutcome::Fault(f);
                }
                let hook_cycles = env.hook.before_read(self.asid, vaddr, dpaddr, env.phys);
                let mem_cycles = env.mem.data_access(self.asid, vaddr, dpaddr, false, env.dram);
                if hook_cycles > 0 || mem_cycles > 1 {
                    self.charge(u64::from(hook_cycles + mem_cycles - 1));
                }
                let raw = match width {
                    Width::Byte => u32::from(env.phys.read_u8(dpaddr)),
                    Width::Half => u32::from(env.phys.read_u16(dpaddr)),
                    Width::Word => env.phys.read_u32(dpaddr),
                };
                let v = match (width, signed) {
                    (Width::Byte, true) => raw as u8 as i8 as i32 as u32,
                    (Width::Half, true) => raw as u16 as i16 as i32 as u32,
                    _ => raw,
                };
                self.ctx.set_reg(rd, v);
                self.retire_simple();
            }
            Instruction::Store { width, rs2, rs1, offset } => {
                let vaddr = self.ctx.reg(rs1).wrapping_add(offset as u32);
                let dpaddr = match env.space.translate(vaddr, AccessKind::Write) {
                    Ok(p) => p,
                    Err(f) => return ExecOutcome::Fault(f),
                };
                if let Err(f) = env.watchdog.check(env.core_id, dpaddr, AccessKind::Write) {
                    return ExecOutcome::Fault(f);
                }
                let hook_cycles = env.hook.before_write(self.asid, vaddr, dpaddr, env.phys);
                let mem_cycles = env.mem.data_access(self.asid, vaddr, dpaddr, true, env.dram);
                if hook_cycles > 0 || mem_cycles > 1 {
                    self.charge(u64::from(hook_cycles + mem_cycles - 1));
                }
                let v = self.ctx.reg(rs2);
                let bytes = match width {
                    Width::Byte => {
                        env.phys.write_u8(dpaddr, v as u8);
                        1
                    }
                    Width::Half => {
                        env.phys.write_u16(dpaddr, v as u16);
                        2
                    }
                    Width::Word => {
                        env.phys.write_u32(dpaddr, v);
                        4
                    }
                };
                // Store-hits-a-cached-line rule: self-modified code is
                // re-decoded (and re-translated) on its next fetch. One
                // shared call site covers both derived-code caches.
                crate::superblock::invalidate_written_code(
                    env.predecode,
                    env.superblocks,
                    dpaddr,
                    bytes,
                );
                store = Some((dpaddr, bytes));
                self.retire_simple();
            }
            Instruction::Branch { cond, rs1, rs2, offset } => {
                if cond.eval(self.ctx.reg(rs1), self.ctx.reg(rs2)) {
                    next_pc = pc.wrapping_add(offset as u32);
                    self.charge(u64::from(self.cfg.redirect_penalty));
                    self.last_fetch_line = None;
                }
                self.retire_simple();
            }
            Instruction::Jal { rd, offset } => {
                let target = pc.wrapping_add(offset as u32);
                let return_addr = pc.wrapping_add(4);
                self.ctx.set_reg(rd, return_addr);
                next_pc = target;
                self.charge(u64::from(self.cfg.redirect_penalty));
                self.last_fetch_line = None;
                if inst.control_class() == ControlClass::Call {
                    events.push(TraceEvent::Call {
                        pc,
                        target,
                        return_addr,
                        sp: self.ctx.reg(Reg::SP),
                    });
                }
                self.retire_simple();
            }
            Instruction::Jalr { rd, rs1, offset } => {
                let target = self.ctx.reg(rs1).wrapping_add(offset as u32) & !3;
                let return_addr = pc.wrapping_add(4);
                let class = inst.control_class();
                self.ctx.set_reg(rd, return_addr);
                next_pc = target;
                self.charge(u64::from(self.cfg.redirect_penalty));
                self.last_fetch_line = None;
                match class {
                    ControlClass::Return => {
                        events.push(TraceEvent::Return { pc, target, sp: self.ctx.reg(Reg::SP) });
                    }
                    ControlClass::IndirectCall => {
                        events.push(TraceEvent::IndirectCall {
                            pc,
                            target,
                            return_addr,
                            sp: self.ctx.reg(Reg::SP),
                        });
                    }
                    _ => {
                        events.push(TraceEvent::IndirectJump { pc, target });
                    }
                }
                self.retire_simple();
            }
            Instruction::Syscall { code } => {
                events.push(TraceEvent::SyscallSync { pc, code });
                self.retired += 1;
                // PC intentionally not advanced; the OS resumes the core.
                return ExecOutcome::Syscall { code };
            }
            Instruction::Halt => {
                self.halted = true;
                self.retired += 1;
                return ExecOutcome::Halted;
            }
            Instruction::Nop => self.retire_simple(),
        }

        self.ctx.pc = next_pc;
        ExecOutcome::Retired { store }
    }

    /// Executes a pre-validated superblock starting at the current PC,
    /// retiring up to `max_insns` instructions with batched accounting.
    ///
    /// Per-instruction work drops to: same-line fetch bookkeeping (a
    /// counter bump, flushed through the hierarchy's hit-noting APIs at
    /// line crossings and block exit) plus the shared
    /// [`Core::execute_decoded`]. Translation, watchdog and decode checks
    /// were proven at translation time and pinned; the hoisted watchdog
    /// checks are re-accounted in one call at exit so watchdog statistics
    /// stay byte-identical with interpretation.
    ///
    /// Returns instructions retired and the exit reason. On
    /// [`BlockExit::Events`] the events are in `out_events` and nothing
    /// executed after the producing instruction, so the machine routes
    /// them at exactly the interpreter's cycle stamps.
    ///
    /// `cycle_horizon` ends the block at the first instruction boundary
    /// where the core clock reaches it. The INDRA control loop sets it
    /// to the monitor's completion preview of the oldest queued trace
    /// event, so a batched core stops at exactly the boundary where the
    /// reference one-instruction loop would have drained that event —
    /// and any violation recovery lands on the identical core state.
    pub(crate) fn run_block(
        &mut self,
        block: &Superblock,
        env: &mut StepEnv<'_>,
        out_events: &mut EventBuf,
        max_insns: u64,
        cycle_horizon: u64,
    ) -> (u64, BlockExit) {
        debug_assert!(!self.halted && !self.stalled, "machine must not step a stopped core");
        debug_assert_eq!(self.ctx.pc, block.entry_vaddr, "block entered at its entry point");
        debug_assert_eq!(self.asid, block.asid, "block entered under its own ASID");
        let block_lo = u64::from(block.entry_paddr);
        let block_hi = block_lo + u64::from(block.len_bytes());
        let mut executed = 0u64;
        let mut faulted = false;
        // Deferred same-line fetch-hit accounting. Data accesses cannot
        // touch the ITLB or IL1 (the hierarchy is non-inclusive), so a
        // run of same-line fetches after a proven hit can never be
        // refused when flushed.
        let mut pending = 0u64;
        let mut pend_vaddr = 0u32;
        let mut pend_paddr = 0u32;
        let mut exit = BlockExit::End;
        for (i, &inst) in block.insts.iter().enumerate() {
            let pc = block.entry_vaddr.wrapping_add(4 * i as u32);
            let paddr = block.entry_paddr + 4 * i as u32;
            let line = paddr & !31;
            let mut events = EventBuf::new();
            if self.last_fetch_line == Some(line) {
                if pending == 0 {
                    pend_vaddr = pc;
                    pend_paddr = paddr;
                }
                pending += 1;
            } else {
                if pending > 0 {
                    let ok = env.mem.note_fetch_hits(self.asid, pend_vaddr, pend_paddr, pending);
                    debug_assert!(ok, "same-line fetches cannot miss mid-block");
                    pending = 0;
                }
                let fetch = env.mem.fetch(self.asid, pc, paddr, env.dram);
                // Crossing fetches always charge (the interpreter's
                // `crossing || il1_fill` condition with crossing true).
                self.charge(u64::from(fetch.cycles));
                self.last_fetch_line = Some(line);
                if fetch.il1_fill.is_some() {
                    events.push(TraceEvent::CodeFill { page_vaddr: pc & !(PAGE_SIZE - 1), pc });
                }
            }
            match self.execute_decoded(inst, pc, env, &mut events) {
                ExecOutcome::Retired { store } => {
                    executed += 1;
                    if !events.is_empty() {
                        *out_events = events;
                    }
                    if i + 1 == block.insts.len() {
                        break; // BlockExit::End
                    }
                    if store.is_some_and(|(p, len)| {
                        u64::from(p) < block_hi && u64::from(p) + u64::from(len) > block_lo
                    }) {
                        exit = BlockExit::SelfModified;
                        break;
                    }
                    if !out_events.is_empty() {
                        exit = BlockExit::Events;
                        break;
                    }
                    if executed >= max_insns || self.cycles >= cycle_horizon {
                        exit = BlockExit::Budget;
                        break;
                    }
                }
                ExecOutcome::Syscall { code } => {
                    executed += 1;
                    *out_events = events;
                    exit = BlockExit::Syscall { code };
                    break;
                }
                ExecOutcome::Halted => {
                    executed += 1;
                    *out_events = events;
                    exit = BlockExit::Halted;
                    break;
                }
                ExecOutcome::Fault(f) => {
                    // The fault costs a pipeline flush, as in the
                    // interpreter's fault path.
                    self.charge(u64::from(self.cfg.redirect_penalty));
                    faulted = true;
                    *out_events = events;
                    exit = BlockExit::Fault(f);
                    break;
                }
            }
        }
        if pending > 0 {
            let ok = env.mem.note_fetch_hits(self.asid, pend_vaddr, pend_paddr, pending);
            debug_assert!(ok, "same-line fetches cannot miss mid-block");
        }
        // Hoisted per-fetch watchdog checks: one per *fetched*
        // instruction (a faulting instruction fetched without retiring).
        env.watchdog.note_passed_checks(env.core_id, executed + u64::from(faulted));
        (executed, exit)
    }

    fn fault(&mut self, f: Fault, events: EventBuf) -> StepResult {
        // A fault costs a pipeline flush.
        self.charge(u64::from(self.cfg.redirect_penalty));
        StepResult { outcome: StepOutcome::Fault(f), events }
    }
}

/// Complete mutable state of a [`Core`], captured by
/// [`Core::save_state`] for the durable-checkpoint subsystem. Includes
/// the issue-group position and last fetched line so cycle accounting
/// continues bit-exactly after a thaw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreState {
    /// Architectural registers and PC.
    pub ctx: CpuContext,
    /// Active address-space tag.
    pub asid: u16,
    /// Halt latch.
    pub halted: bool,
    /// Resurrector stall line.
    pub stalled: bool,
    /// Cycles accounted so far.
    pub cycles: u64,
    /// Instructions retired so far.
    pub retired: u64,
    /// Position within the current issue group.
    pub group: u32,
    /// Line base of the last instruction fetch (fetch-crossing model).
    pub last_fetch_line: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoopHook, Pte};
    use indra_mem::{CoreMemConfig, DramConfig};

    /// A minimal single-core rig: identity-map `pages` pages from
    /// vaddr 0x1000 as RWX, load `words` at 0x1000, start PC there.
    struct Rig {
        core: Core,
        space: AddressSpace,
        mem: CoreMemory,
        dram: Sdram,
        phys: PhysicalMemory,
        watchdog: MemoryWatchdog,
        hook: NoopHook,
        predecode: PredecodeCache,
        superblocks: SuperblockCache,
    }

    impl Rig {
        fn new(insts: &[Instruction]) -> Rig {
            let mut space = AddressSpace::new(1);
            for vpn in 1..16 {
                space.map(vpn, Pte { ppn: vpn, read: true, write: true, execute: vpn < 8 });
            }
            let mut phys = PhysicalMemory::new();
            for (i, inst) in insts.iter().enumerate() {
                phys.write_u32(0x1000 + i as u32 * 4, inst.encode().unwrap());
            }
            let mut watchdog = MemoryWatchdog::new(1);
            watchdog.set_privileged(0, true);
            let mut core = Core::new(CoreConfig::default());
            core.set_pc(0x1000);
            core.set_asid(1);
            Rig {
                core,
                space,
                mem: CoreMemory::new(CoreMemConfig::default()),
                dram: Sdram::new(DramConfig::default()),
                phys,
                watchdog,
                hook: NoopHook,
                predecode: PredecodeCache::new(true),
                superblocks: SuperblockCache::new(true),
            }
        }

        fn step(&mut self) -> StepResult {
            let mut env = StepEnv {
                space: &self.space,
                mem: &mut self.mem,
                dram: &mut self.dram,
                phys: &mut self.phys,
                watchdog: &mut self.watchdog,
                hook: &mut self.hook,
                predecode: &mut self.predecode,
                superblocks: &mut self.superblocks,
                core_id: 0,
            };
            self.core.step(&mut env)
        }

        fn run_block(
            &mut self,
            block: &crate::superblock::Superblock,
            max: u64,
        ) -> (u64, BlockExit, EventBuf) {
            let mut ev = EventBuf::new();
            let mut env = StepEnv {
                space: &self.space,
                mem: &mut self.mem,
                dram: &mut self.dram,
                phys: &mut self.phys,
                watchdog: &mut self.watchdog,
                hook: &mut self.hook,
                predecode: &mut self.predecode,
                superblocks: &mut self.superblocks,
                core_id: 0,
            };
            let (n, exit) = self.core.run_block(block, &mut env, &mut ev, max, u64::MAX);
            (n, exit, ev)
        }

        fn run(&mut self, max: usize) -> StepOutcome {
            for _ in 0..max {
                let r = self.step();
                match r.outcome {
                    StepOutcome::Executed => continue,
                    other => return other,
                }
            }
            panic!("did not settle in {max} steps");
        }
    }

    use indra_isa::AluOp;

    #[test]
    fn arithmetic_and_halt() {
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 40 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 2 },
            Instruction::Halt,
        ]);
        assert_eq!(rig.run(10), StepOutcome::Halted);
        assert_eq!(rig.core.reg(Reg::A0), 42);
        assert!(rig.core.is_halted());
        assert_eq!(rig.core.retired(), 3);
    }

    #[test]
    fn loads_and_stores() {
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 0x2000 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T1, rs1: Reg::ZERO, imm: 1234 },
            Instruction::Store { width: Width::Word, rs2: Reg::T1, rs1: Reg::T0, offset: 8 },
            Instruction::Load {
                width: Width::Word,
                signed: true,
                rd: Reg::A0,
                rs1: Reg::T0,
                offset: 8,
            },
            Instruction::Halt,
        ]);
        assert_eq!(rig.run(10), StepOutcome::Halted);
        assert_eq!(rig.core.reg(Reg::A0), 1234);
        assert_eq!(rig.phys.read_u32(0x2008), 1234);
    }

    #[test]
    fn sign_extension_on_byte_load() {
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 0x2000 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T1, rs1: Reg::ZERO, imm: 0xFF },
            Instruction::Store { width: Width::Byte, rs2: Reg::T1, rs1: Reg::T0, offset: 0 },
            Instruction::Load {
                width: Width::Byte,
                signed: true,
                rd: Reg::A0,
                rs1: Reg::T0,
                offset: 0,
            },
            Instruction::Load {
                width: Width::Byte,
                signed: false,
                rd: Reg::A1,
                rs1: Reg::T0,
                offset: 0,
            },
            Instruction::Halt,
        ]);
        rig.run(10);
        assert_eq!(rig.core.reg(Reg::A0), 0xFFFF_FFFF);
        assert_eq!(rig.core.reg(Reg::A1), 0xFF);
    }

    #[test]
    fn call_emits_trace_event() {
        let mut rig = Rig::new(&[
            Instruction::call(8), // call pc+8 (the halt below)
            Instruction::Nop,
            Instruction::Halt,
        ]);
        let r = rig.step();
        let call = r.events.iter().find_map(|e| match e {
            TraceEvent::Call { target, return_addr, .. } => Some((*target, *return_addr)),
            _ => None,
        });
        assert_eq!(call, Some((0x1008, 0x1004)));
        assert_eq!(rig.core.pc(), 0x1008);
    }

    #[test]
    fn return_emits_trace_event() {
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::RA, rs1: Reg::ZERO, imm: 0x1008 },
            Instruction::ret(),
            Instruction::Halt,
        ]);
        rig.step();
        let r = rig.step();
        assert!(matches!(r.events.last(), Some(TraceEvent::Return { target: 0x1008, .. })));
        assert_eq!(rig.run(5), StepOutcome::Halted);
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut rig = Rig::new(&[Instruction::Nop]);
        rig.phys.write_u32(0x1000, 0xFFFF_FFFF);
        let r = rig.step();
        assert!(matches!(r.outcome, StepOutcome::Fault(Fault::IllegalInstruction { .. })));
        assert_eq!(rig.core.pc(), 0x1000, "PC stays at the fault");
    }

    #[test]
    fn store_to_code_page_is_protected() {
        // Page 1 (0x1000) is executable; set it read+execute only.
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 0x1000 },
            Instruction::Store { width: Width::Word, rs2: Reg::T0, rs1: Reg::T0, offset: 0 },
        ]);
        rig.space.protect(1, true, false, true);
        rig.step();
        let r = rig.step();
        assert!(matches!(
            r.outcome,
            StepOutcome::Fault(Fault::Protection { kind: AccessKind::Write, .. })
        ));
    }

    #[test]
    fn nx_page_fetch_faults() {
        let mut rig = Rig::new(&[
            // jump to 0x9000 (mapped, but execute=false for vpn >= 8)
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 0x7FFF },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::T0, imm: 0x1001 },
            Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::T0, offset: 0 },
        ]);
        rig.step();
        rig.step();
        let r = rig.step();
        assert!(matches!(r.events.last(), Some(TraceEvent::IndirectJump { .. })));
        let r2 = rig.step();
        assert!(matches!(
            r2.outcome,
            StepOutcome::Fault(Fault::Protection { kind: AccessKind::Execute, .. })
        ));
    }

    #[test]
    fn syscall_stops_until_finished() {
        let mut rig = Rig::new(&[Instruction::Syscall { code: 9 }, Instruction::Halt]);
        let r = rig.step();
        assert_eq!(r.outcome, StepOutcome::Syscall { code: 9 });
        assert!(matches!(r.events.last(), Some(TraceEvent::SyscallSync { code: 9, .. })));
        assert_eq!(rig.core.pc(), 0x1000, "pc parked on the syscall");
        rig.core.finish_syscall(Some(77));
        assert_eq!(rig.core.reg(Reg::A0), 77);
        assert_eq!(rig.run(5), StepOutcome::Halted);
    }

    #[test]
    fn cycles_accumulate_and_group_issue() {
        let mut rig =
            Rig::new(&[Instruction::Nop, Instruction::Nop, Instruction::Nop, Instruction::Halt]);
        rig.run(10);
        // Cold fetch charged once (all four share one 32B line) plus < 1
        // group of simple ops.
        assert!(rig.core.cycles() > 0);
        let warm_cycles = rig.core.cycles();
        assert!(warm_cycles < 1000, "sane magnitude, got {warm_cycles}");
    }

    #[test]
    fn code_fill_event_on_cold_fetch() {
        let mut rig = Rig::new(&[Instruction::Nop, Instruction::Halt]);
        let r = rig.step();
        assert!(
            r.events.iter().any(|e| matches!(e, TraceEvent::CodeFill { page_vaddr: 0x1000, .. })),
            "cold IL1 fill must request a code-origin check"
        );
        let r2 = rig.step();
        assert!(r2.events.is_empty(), "warm fetch emits nothing");
    }

    #[test]
    fn watchdog_blocks_unassigned_physical_access() {
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 0x2000 },
            Instruction::Load {
                width: Width::Word,
                signed: true,
                rd: Reg::A0,
                rs1: Reg::T0,
                offset: 0,
            },
            Instruction::Halt,
        ]);
        // Revoke privilege; allow only the code page.
        rig.watchdog.set_privileged(0, false);
        rig.watchdog.allow(0, crate::PhysRange::try_new(0x1000, 0x2000).unwrap());
        rig.step();
        let r = rig.step();
        assert!(matches!(r.outcome, StepOutcome::Fault(Fault::Watchdog { paddr: 0x2000, .. })));
    }

    #[test]
    fn predecode_never_serves_stale_bytes() {
        // Execute an instruction (warming the predecode cache), rewrite
        // its bytes through a path the store-invalidation hook never
        // sees (direct physical write, as DMA or a rollback engine
        // would), loop back, and require the *new* bytes to execute.
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 1 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 0x1000 },
            Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::T0, offset: 0 },
        ]);
        rig.step(); // a0 = 1, decode of 0x1000 now cached
        assert_eq!(rig.core.reg(Reg::A0), 1);
        let patched = Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 99 };
        rig.phys.write_u32(0x1000, patched.encode().unwrap());
        rig.step(); // t0 = 0x1000
        rig.step(); // jump back to 0x1000
        rig.step(); // must execute the patched instruction
        assert_eq!(rig.core.reg(Reg::A0), 99, "stale predecoded instruction executed");
    }

    /// A 6-instruction loop body ending in a backward `bne`, iterated
    /// twice (t1 counts up to t2 = 2), then a `halt`.
    fn loop_prog() -> [Instruction; 7] {
        use indra_isa::Cond;
        [
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T2, rs1: Reg::ZERO, imm: 2 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T1, rs1: Reg::T1, imm: 1 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 5 },
            Instruction::Store { width: Width::Word, rs2: Reg::A0, rs1: Reg::ZERO, offset: 0x2000 },
            Instruction::Load {
                width: Width::Word,
                signed: false,
                rd: Reg::A1,
                rs1: Reg::ZERO,
                offset: 0x2000,
            },
            Instruction::Branch { cond: Cond::Ne, rs1: Reg::T1, rs2: Reg::T2, offset: -20 },
            Instruction::Halt,
        ]
    }

    fn open_watchdog(rig: &mut Rig) {
        // Unprivileged with an allow-all range, so the watchdog *counts*
        // checks and the hoisted accounting is exercised.
        rig.watchdog.set_privileged(0, false);
        rig.watchdog.allow(0, crate::PhysRange::try_new(0, u32::MAX).unwrap());
    }

    #[test]
    fn run_block_matches_the_interpreter_cycle_for_cycle() {
        let prog = loop_prog();
        let mut a = Rig::new(&prog);
        let mut b = Rig::new(&prog);
        open_watchdog(&mut a);
        open_watchdog(&mut b);
        assert_eq!(a.run(64), StepOutcome::Halted);
        // Rig B: iteration 1 interpreted (warming caches), iteration 2
        // as a superblock, then the halt interpreted.
        for _ in 0..6 {
            assert_eq!(b.step().outcome, StepOutcome::Executed);
        }
        assert_eq!(b.core.pc(), 0x1000, "loop closed");
        let block =
            crate::superblock::translate(&b.space, &b.watchdog, &b.phys, 0, 0x1000).unwrap();
        assert_eq!(block.insts.len(), 6, "block ends at the bne");
        let (n, exit, ev) = b.run_block(&block, 1000);
        assert_eq!((n, exit), (6, BlockExit::End));
        assert!(ev.is_empty(), "warm code produces no events");
        assert_eq!(b.step().outcome, StepOutcome::Halted);
        // Batched and interpreted execution must be indistinguishable.
        assert_eq!(a.core.cycles(), b.core.cycles());
        assert_eq!(a.core.retired(), b.core.retired());
        assert_eq!(a.core.context(), b.core.context());
        assert_eq!(a.watchdog.stats(), b.watchdog.stats());
    }

    #[test]
    fn store_into_own_block_exits_before_stale_micro_ops() {
        use indra_isa::Cond;
        let bne = Instruction::Branch { cond: Cond::Ne, rs1: Reg::T1, rs2: Reg::T2, offset: -16 };
        let prog = [
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T2, rs1: Reg::ZERO, imm: 2 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T1, rs1: Reg::T1, imm: 1 },
            Instruction::Load {
                width: Width::Word,
                signed: false,
                rd: Reg::T0,
                rs1: Reg::ZERO,
                offset: 0x2000,
            },
            // Stores the bne's own encoding over itself: bytes unchanged,
            // but the engine cannot know that and must bail out.
            Instruction::Store { width: Width::Word, rs2: Reg::T0, rs1: Reg::ZERO, offset: 0x1010 },
            bne,
            Instruction::Halt,
        ];
        let mut a = Rig::new(&prog);
        let mut b = Rig::new(&prog);
        a.phys.write_u32(0x2000, bne.encode().unwrap());
        b.phys.write_u32(0x2000, bne.encode().unwrap());
        assert_eq!(a.run(64), StepOutcome::Halted);
        for _ in 0..5 {
            assert_eq!(b.step().outcome, StepOutcome::Executed);
        }
        assert_eq!(b.core.pc(), 0x1000, "loop closed");
        let block =
            crate::superblock::translate(&b.space, &b.watchdog, &b.phys, 0, 0x1000).unwrap();
        assert_eq!(block.insts.len(), 5);
        let (n, exit, _) = b.run_block(&block, 1000);
        assert_eq!(exit, BlockExit::SelfModified);
        assert_eq!(n, 4, "the store retires, nothing after it does");
        assert_eq!(b.core.pc(), 0x1010, "pc parked on the (re-fetched) bne");
        assert_eq!(b.run(5), StepOutcome::Halted);
        assert_eq!(a.core.cycles(), b.core.cycles());
        assert_eq!(a.core.retired(), b.core.retired());
        assert_eq!(a.core.context(), b.core.context());
    }

    #[test]
    fn context_roundtrip() {
        let mut rig = Rig::new(&[Instruction::Halt]);
        let mut ctx = rig.core.context();
        ctx.regs[5] = 99;
        ctx.pc = 0x1F00;
        rig.core.set_context(ctx);
        assert_eq!(rig.core.pc(), 0x1F00);
        assert_eq!(rig.core.context().regs[5], 99);
    }
}
