//! The cycle-accounting core model.
//!
//! An in-order superscalar approximation in the SimpleScalar tradition:
//! instructions execute one at a time with architecturally exact
//! semantics, while cycle accounting models an `issue_width`-wide commit
//! group (Table 4: 8-wide) that any stall — IL1 refill, data miss, taken
//! control transfer — closes. Absolute cycle counts are not the point;
//! the *relative* costs that drive the paper's figures (monitor
//! synchronization, backup stalls, rollback work) are.

use indra_isa::{ControlClass, Instruction, Reg, Width};
use indra_mem::{CoreMemory, PhysicalMemory, Sdram, PAGE_SIZE};

use crate::{
    AccessKind, AddressSpace, BackupHook, CoreConfig, EventBuf, Fault, MemoryWatchdog,
    PredecodeCache, TraceEvent,
};

/// Architectural register state of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuContext {
    /// The 32 general-purpose registers (`regs[0]` reads as zero).
    pub regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
}

impl CpuContext {
    /// Reads a register (`r0` is hard-wired to zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() as usize]
        }
    }

    /// Writes a register (writes to `r0` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }
}

/// What happened when the core stepped one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired normally.
    Executed,
    /// The core executed `halt`.
    Halted,
    /// The core reached a `syscall` and is waiting for the OS. The PC
    /// still points at the syscall; call
    /// [`Core::finish_syscall`] to resume.
    Syscall {
        /// The syscall code.
        code: u16,
    },
    /// The core faulted; PC points at the faulting instruction.
    Fault(Fault),
}

/// The result of stepping one instruction.
#[derive(Debug, Clone, Copy)]
pub struct StepResult {
    /// Outcome classification.
    pub outcome: StepOutcome,
    /// Trace events produced (0–2 per instruction), held inline — the
    /// hot loop never allocates.
    pub events: EventBuf,
}

/// Everything a core needs from the machine to execute one instruction.
pub struct StepEnv<'a> {
    /// The active address space for this core.
    pub space: &'a AddressSpace,
    /// The core's private cache/TLB hierarchy.
    pub mem: &'a mut CoreMemory,
    /// Shared DRAM.
    pub dram: &'a mut Sdram,
    /// Shared physical memory contents.
    pub phys: &'a mut PhysicalMemory,
    /// The INDRA memory watchdog.
    pub watchdog: &'a mut MemoryWatchdog,
    /// The active backup/checkpoint engine hook.
    pub hook: &'a mut dyn BackupHook,
    /// This core's predecoded-instruction cache.
    pub predecode: &'a mut PredecodeCache,
    /// This core's id (for watchdog tagging).
    pub core_id: usize,
}

/// One processor core.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    ctx: CpuContext,
    asid: u16,
    halted: bool,
    stalled: bool,
    cycles: u64,
    retired: u64,
    group: u32,
    last_fetch_line: Option<u32>,
}

impl Core {
    /// Creates a core at PC 0, halted state cleared.
    #[must_use]
    pub fn new(cfg: CoreConfig) -> Core {
        Core {
            cfg,
            ctx: CpuContext::default(),
            asid: 0,
            halted: false,
            stalled: false,
            cycles: 0,
            retired: 0,
            group: 0,
            last_fetch_line: None,
        }
    }

    /// The core's architectural context.
    #[must_use]
    pub fn context(&self) -> CpuContext {
        self.ctx
    }

    /// Replaces the architectural context (process switch / rollback).
    pub fn set_context(&mut self, ctx: CpuContext) {
        self.ctx = ctx;
        self.last_fetch_line = None;
    }

    /// Reads one register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.ctx.reg(r)
    }

    /// Writes one register (syscall return values).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.ctx.set_reg(r, value);
    }

    /// Current PC.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.ctx.pc
    }

    /// Sets the PC (boot / recovery).
    pub fn set_pc(&mut self, pc: u32) {
        self.ctx.pc = pc;
        self.last_fetch_line = None;
    }

    /// The address-space tag the core stamps on its accesses.
    #[must_use]
    pub fn asid(&self) -> u16 {
        self.asid
    }

    /// Switches the active ASID (context switch).
    pub fn set_asid(&mut self, asid: u16) {
        self.asid = asid;
    }

    /// Whether the core has executed `halt`.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Clears the halt latch (reboot).
    pub fn clear_halt(&mut self) {
        self.halted = false;
    }

    /// Whether the resurrector has stalled this core.
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Stall/resume control line (§2.3.3: tight coupling lets the
    /// privileged core stall a corrupted resurrectee).
    pub fn set_stalled(&mut self, stalled: bool) {
        self.stalled = stalled;
    }

    /// Total cycles accounted to this core.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Adds externally imposed stall cycles (FIFO full, sync waits).
    pub fn add_stall_cycles(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.group = 0;
    }

    /// Instructions retired.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Completes a pending syscall: writes the return value (if any) into
    /// `a0` and advances past the `syscall` instruction.
    pub fn finish_syscall(&mut self, ret: Option<u32>) {
        if let Some(v) = ret {
            self.ctx.set_reg(Reg::A0, v);
        }
        self.ctx.pc = self.ctx.pc.wrapping_add(4);
        self.last_fetch_line = None;
    }

    /// Captures the core's full mutable state (context, mode latches and
    /// cycle accounting) so a thawed machine resumes mid-stream with
    /// identical timing.
    #[must_use]
    pub fn save_state(&self) -> CoreState {
        CoreState {
            ctx: self.ctx,
            asid: self.asid,
            halted: self.halted,
            stalled: self.stalled,
            cycles: self.cycles,
            retired: self.retired,
            group: self.group,
            last_fetch_line: self.last_fetch_line,
        }
    }

    /// Restores state captured by [`Core::save_state`].
    pub fn restore_state(&mut self, state: &CoreState) {
        self.ctx = state.ctx;
        self.asid = state.asid;
        self.halted = state.halted;
        self.stalled = state.stalled;
        self.cycles = state.cycles;
        self.retired = state.retired;
        self.group = state.group;
        self.last_fetch_line = state.last_fetch_line;
    }

    fn charge(&mut self, extra: u64) {
        // Close the current issue group on any stall.
        self.cycles += extra;
        self.group = 0;
    }

    fn retire_simple(&mut self) {
        self.group += 1;
        if self.group >= self.cfg.issue_width {
            self.cycles += 1;
            self.group = 0;
        }
        self.retired += 1;
    }

    /// Executes one instruction.
    ///
    /// On faults and syscalls the architectural state is left at the
    /// triggering instruction; callers decide how to proceed.
    pub fn step(&mut self, env: &mut StepEnv<'_>) -> StepResult {
        debug_assert!(!self.halted && !self.stalled, "machine must not step a stopped core");
        let mut events = EventBuf::new();
        let pc = self.ctx.pc;

        // --- fetch ---------------------------------------------------------
        let paddr = match env.space.translate(pc, AccessKind::Execute) {
            Ok(p) => p,
            Err(f) => return self.fault(f, events),
        };
        if let Err(f) = env.watchdog.check(env.core_id, paddr, AccessKind::Execute) {
            return self.fault(f, events);
        }
        let line = paddr & !31;
        let crossing = self.last_fetch_line != Some(line);
        let fetch = env.mem.fetch(self.asid, pc, paddr, env.dram);
        if crossing || fetch.il1_fill.is_some() {
            self.charge(u64::from(fetch.cycles));
        }
        self.last_fetch_line = Some(line);
        if fetch.il1_fill.is_some() {
            // Code origin check request; the machine runs it through the
            // CAM filter before it reaches the FIFO.
            events.push(TraceEvent::CodeFill { page_vaddr: pc & !(PAGE_SIZE - 1), pc });
        }

        // The raw word is read every fetch and compared against the
        // predecode entry's stored word, so a cached decode can never
        // outlive the bytes it came from, whatever path wrote them.
        let word = env.phys.read_u32(paddr);
        let inst = match env.predecode.lookup(paddr, word) {
            Some(i) => i,
            None => match Instruction::decode(word) {
                Ok(i) => {
                    env.predecode.insert(paddr, word, i);
                    i
                }
                Err(_) => return self.fault(Fault::IllegalInstruction { pc, word }, events),
            },
        };

        // --- execute ---------------------------------------------------------
        let mut next_pc = pc.wrapping_add(4);
        match inst {
            Instruction::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.ctx.reg(rs1), self.ctx.reg(rs2));
                self.ctx.set_reg(rd, v);
                self.retire_simple();
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let v = op.apply(self.ctx.reg(rs1), imm as u32);
                self.ctx.set_reg(rd, v);
                self.retire_simple();
            }
            Instruction::Lui { rd, imm } => {
                self.ctx.set_reg(rd, imm << 16);
                self.retire_simple();
            }
            Instruction::Load { width, signed, rd, rs1, offset } => {
                let vaddr = self.ctx.reg(rs1).wrapping_add(offset as u32);
                let dpaddr = match env.space.translate(vaddr, AccessKind::Read) {
                    Ok(p) => p,
                    Err(f) => return self.fault(f, events),
                };
                if let Err(f) = env.watchdog.check(env.core_id, dpaddr, AccessKind::Read) {
                    return self.fault(f, events);
                }
                let hook_cycles = env.hook.before_read(self.asid, vaddr, dpaddr, env.phys);
                let mem_cycles = env.mem.data_access(self.asid, vaddr, dpaddr, false, env.dram);
                if hook_cycles > 0 || mem_cycles > 1 {
                    self.charge(u64::from(hook_cycles + mem_cycles - 1));
                }
                let raw = match width {
                    Width::Byte => u32::from(env.phys.read_u8(dpaddr)),
                    Width::Half => u32::from(env.phys.read_u16(dpaddr)),
                    Width::Word => env.phys.read_u32(dpaddr),
                };
                let v = match (width, signed) {
                    (Width::Byte, true) => raw as u8 as i8 as i32 as u32,
                    (Width::Half, true) => raw as u16 as i16 as i32 as u32,
                    _ => raw,
                };
                self.ctx.set_reg(rd, v);
                self.retire_simple();
            }
            Instruction::Store { width, rs2, rs1, offset } => {
                let vaddr = self.ctx.reg(rs1).wrapping_add(offset as u32);
                let dpaddr = match env.space.translate(vaddr, AccessKind::Write) {
                    Ok(p) => p,
                    Err(f) => return self.fault(f, events),
                };
                if let Err(f) = env.watchdog.check(env.core_id, dpaddr, AccessKind::Write) {
                    return self.fault(f, events);
                }
                let hook_cycles = env.hook.before_write(self.asid, vaddr, dpaddr, env.phys);
                let mem_cycles = env.mem.data_access(self.asid, vaddr, dpaddr, true, env.dram);
                if hook_cycles > 0 || mem_cycles > 1 {
                    self.charge(u64::from(hook_cycles + mem_cycles - 1));
                }
                let v = self.ctx.reg(rs2);
                let bytes = match width {
                    Width::Byte => {
                        env.phys.write_u8(dpaddr, v as u8);
                        1
                    }
                    Width::Half => {
                        env.phys.write_u16(dpaddr, v as u16);
                        2
                    }
                    Width::Word => {
                        env.phys.write_u32(dpaddr, v);
                        4
                    }
                };
                // Store-hits-a-cached-line rule: self-modified code is
                // re-decoded on its next fetch.
                env.predecode.invalidate_range(dpaddr, bytes);
                self.retire_simple();
            }
            Instruction::Branch { cond, rs1, rs2, offset } => {
                if cond.eval(self.ctx.reg(rs1), self.ctx.reg(rs2)) {
                    next_pc = pc.wrapping_add(offset as u32);
                    self.charge(u64::from(self.cfg.redirect_penalty));
                    self.last_fetch_line = None;
                }
                self.retire_simple();
            }
            Instruction::Jal { rd, offset } => {
                let target = pc.wrapping_add(offset as u32);
                let return_addr = pc.wrapping_add(4);
                self.ctx.set_reg(rd, return_addr);
                next_pc = target;
                self.charge(u64::from(self.cfg.redirect_penalty));
                self.last_fetch_line = None;
                if inst.control_class() == ControlClass::Call {
                    events.push(TraceEvent::Call {
                        pc,
                        target,
                        return_addr,
                        sp: self.ctx.reg(Reg::SP),
                    });
                }
                self.retire_simple();
            }
            Instruction::Jalr { rd, rs1, offset } => {
                let target = self.ctx.reg(rs1).wrapping_add(offset as u32) & !3;
                let return_addr = pc.wrapping_add(4);
                let class = inst.control_class();
                self.ctx.set_reg(rd, return_addr);
                next_pc = target;
                self.charge(u64::from(self.cfg.redirect_penalty));
                self.last_fetch_line = None;
                match class {
                    ControlClass::Return => {
                        events.push(TraceEvent::Return { pc, target, sp: self.ctx.reg(Reg::SP) });
                    }
                    ControlClass::IndirectCall => {
                        events.push(TraceEvent::IndirectCall {
                            pc,
                            target,
                            return_addr,
                            sp: self.ctx.reg(Reg::SP),
                        });
                    }
                    _ => {
                        events.push(TraceEvent::IndirectJump { pc, target });
                    }
                }
                self.retire_simple();
            }
            Instruction::Syscall { code } => {
                events.push(TraceEvent::SyscallSync { pc, code });
                self.retired += 1;
                // PC intentionally not advanced; the OS resumes the core.
                return StepResult { outcome: StepOutcome::Syscall { code }, events };
            }
            Instruction::Halt => {
                self.halted = true;
                self.retired += 1;
                return StepResult { outcome: StepOutcome::Halted, events };
            }
            Instruction::Nop => self.retire_simple(),
        }

        self.ctx.pc = next_pc;
        StepResult { outcome: StepOutcome::Executed, events }
    }

    fn fault(&mut self, f: Fault, events: EventBuf) -> StepResult {
        // A fault costs a pipeline flush.
        self.charge(u64::from(self.cfg.redirect_penalty));
        StepResult { outcome: StepOutcome::Fault(f), events }
    }
}

/// Complete mutable state of a [`Core`], captured by
/// [`Core::save_state`] for the durable-checkpoint subsystem. Includes
/// the issue-group position and last fetched line so cycle accounting
/// continues bit-exactly after a thaw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreState {
    /// Architectural registers and PC.
    pub ctx: CpuContext,
    /// Active address-space tag.
    pub asid: u16,
    /// Halt latch.
    pub halted: bool,
    /// Resurrector stall line.
    pub stalled: bool,
    /// Cycles accounted so far.
    pub cycles: u64,
    /// Instructions retired so far.
    pub retired: u64,
    /// Position within the current issue group.
    pub group: u32,
    /// Line base of the last instruction fetch (fetch-crossing model).
    pub last_fetch_line: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoopHook, Pte};
    use indra_mem::{CoreMemConfig, DramConfig};

    /// A minimal single-core rig: identity-map `pages` pages from
    /// vaddr 0x1000 as RWX, load `words` at 0x1000, start PC there.
    struct Rig {
        core: Core,
        space: AddressSpace,
        mem: CoreMemory,
        dram: Sdram,
        phys: PhysicalMemory,
        watchdog: MemoryWatchdog,
        hook: NoopHook,
        predecode: PredecodeCache,
    }

    impl Rig {
        fn new(insts: &[Instruction]) -> Rig {
            let mut space = AddressSpace::new(1);
            for vpn in 1..16 {
                space.map(vpn, Pte { ppn: vpn, read: true, write: true, execute: vpn < 8 });
            }
            let mut phys = PhysicalMemory::new();
            for (i, inst) in insts.iter().enumerate() {
                phys.write_u32(0x1000 + i as u32 * 4, inst.encode().unwrap());
            }
            let mut watchdog = MemoryWatchdog::new(1);
            watchdog.set_privileged(0, true);
            let mut core = Core::new(CoreConfig::default());
            core.set_pc(0x1000);
            core.set_asid(1);
            Rig {
                core,
                space,
                mem: CoreMemory::new(CoreMemConfig::default()),
                dram: Sdram::new(DramConfig::default()),
                phys,
                watchdog,
                hook: NoopHook,
                predecode: PredecodeCache::new(true),
            }
        }

        fn step(&mut self) -> StepResult {
            let mut env = StepEnv {
                space: &self.space,
                mem: &mut self.mem,
                dram: &mut self.dram,
                phys: &mut self.phys,
                watchdog: &mut self.watchdog,
                hook: &mut self.hook,
                predecode: &mut self.predecode,
                core_id: 0,
            };
            self.core.step(&mut env)
        }

        fn run(&mut self, max: usize) -> StepOutcome {
            for _ in 0..max {
                let r = self.step();
                match r.outcome {
                    StepOutcome::Executed => continue,
                    other => return other,
                }
            }
            panic!("did not settle in {max} steps");
        }
    }

    use indra_isa::AluOp;

    #[test]
    fn arithmetic_and_halt() {
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 40 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 2 },
            Instruction::Halt,
        ]);
        assert_eq!(rig.run(10), StepOutcome::Halted);
        assert_eq!(rig.core.reg(Reg::A0), 42);
        assert!(rig.core.is_halted());
        assert_eq!(rig.core.retired(), 3);
    }

    #[test]
    fn loads_and_stores() {
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 0x2000 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T1, rs1: Reg::ZERO, imm: 1234 },
            Instruction::Store { width: Width::Word, rs2: Reg::T1, rs1: Reg::T0, offset: 8 },
            Instruction::Load {
                width: Width::Word,
                signed: true,
                rd: Reg::A0,
                rs1: Reg::T0,
                offset: 8,
            },
            Instruction::Halt,
        ]);
        assert_eq!(rig.run(10), StepOutcome::Halted);
        assert_eq!(rig.core.reg(Reg::A0), 1234);
        assert_eq!(rig.phys.read_u32(0x2008), 1234);
    }

    #[test]
    fn sign_extension_on_byte_load() {
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 0x2000 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T1, rs1: Reg::ZERO, imm: 0xFF },
            Instruction::Store { width: Width::Byte, rs2: Reg::T1, rs1: Reg::T0, offset: 0 },
            Instruction::Load {
                width: Width::Byte,
                signed: true,
                rd: Reg::A0,
                rs1: Reg::T0,
                offset: 0,
            },
            Instruction::Load {
                width: Width::Byte,
                signed: false,
                rd: Reg::A1,
                rs1: Reg::T0,
                offset: 0,
            },
            Instruction::Halt,
        ]);
        rig.run(10);
        assert_eq!(rig.core.reg(Reg::A0), 0xFFFF_FFFF);
        assert_eq!(rig.core.reg(Reg::A1), 0xFF);
    }

    #[test]
    fn call_emits_trace_event() {
        let mut rig = Rig::new(&[
            Instruction::call(8), // call pc+8 (the halt below)
            Instruction::Nop,
            Instruction::Halt,
        ]);
        let r = rig.step();
        let call = r.events.iter().find_map(|e| match e {
            TraceEvent::Call { target, return_addr, .. } => Some((*target, *return_addr)),
            _ => None,
        });
        assert_eq!(call, Some((0x1008, 0x1004)));
        assert_eq!(rig.core.pc(), 0x1008);
    }

    #[test]
    fn return_emits_trace_event() {
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::RA, rs1: Reg::ZERO, imm: 0x1008 },
            Instruction::ret(),
            Instruction::Halt,
        ]);
        rig.step();
        let r = rig.step();
        assert!(matches!(r.events.last(), Some(TraceEvent::Return { target: 0x1008, .. })));
        assert_eq!(rig.run(5), StepOutcome::Halted);
    }

    #[test]
    fn illegal_instruction_faults() {
        let mut rig = Rig::new(&[Instruction::Nop]);
        rig.phys.write_u32(0x1000, 0xFFFF_FFFF);
        let r = rig.step();
        assert!(matches!(r.outcome, StepOutcome::Fault(Fault::IllegalInstruction { .. })));
        assert_eq!(rig.core.pc(), 0x1000, "PC stays at the fault");
    }

    #[test]
    fn store_to_code_page_is_protected() {
        // Page 1 (0x1000) is executable; set it read+execute only.
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 0x1000 },
            Instruction::Store { width: Width::Word, rs2: Reg::T0, rs1: Reg::T0, offset: 0 },
        ]);
        rig.space.protect(1, true, false, true);
        rig.step();
        let r = rig.step();
        assert!(matches!(
            r.outcome,
            StepOutcome::Fault(Fault::Protection { kind: AccessKind::Write, .. })
        ));
    }

    #[test]
    fn nx_page_fetch_faults() {
        let mut rig = Rig::new(&[
            // jump to 0x9000 (mapped, but execute=false for vpn >= 8)
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 0x7FFF },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::T0, imm: 0x1001 },
            Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::T0, offset: 0 },
        ]);
        rig.step();
        rig.step();
        let r = rig.step();
        assert!(matches!(r.events.last(), Some(TraceEvent::IndirectJump { .. })));
        let r2 = rig.step();
        assert!(matches!(
            r2.outcome,
            StepOutcome::Fault(Fault::Protection { kind: AccessKind::Execute, .. })
        ));
    }

    #[test]
    fn syscall_stops_until_finished() {
        let mut rig = Rig::new(&[Instruction::Syscall { code: 9 }, Instruction::Halt]);
        let r = rig.step();
        assert_eq!(r.outcome, StepOutcome::Syscall { code: 9 });
        assert!(matches!(r.events.last(), Some(TraceEvent::SyscallSync { code: 9, .. })));
        assert_eq!(rig.core.pc(), 0x1000, "pc parked on the syscall");
        rig.core.finish_syscall(Some(77));
        assert_eq!(rig.core.reg(Reg::A0), 77);
        assert_eq!(rig.run(5), StepOutcome::Halted);
    }

    #[test]
    fn cycles_accumulate_and_group_issue() {
        let mut rig =
            Rig::new(&[Instruction::Nop, Instruction::Nop, Instruction::Nop, Instruction::Halt]);
        rig.run(10);
        // Cold fetch charged once (all four share one 32B line) plus < 1
        // group of simple ops.
        assert!(rig.core.cycles() > 0);
        let warm_cycles = rig.core.cycles();
        assert!(warm_cycles < 1000, "sane magnitude, got {warm_cycles}");
    }

    #[test]
    fn code_fill_event_on_cold_fetch() {
        let mut rig = Rig::new(&[Instruction::Nop, Instruction::Halt]);
        let r = rig.step();
        assert!(
            r.events.iter().any(|e| matches!(e, TraceEvent::CodeFill { page_vaddr: 0x1000, .. })),
            "cold IL1 fill must request a code-origin check"
        );
        let r2 = rig.step();
        assert!(r2.events.is_empty(), "warm fetch emits nothing");
    }

    #[test]
    fn watchdog_blocks_unassigned_physical_access() {
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 0x2000 },
            Instruction::Load {
                width: Width::Word,
                signed: true,
                rd: Reg::A0,
                rs1: Reg::T0,
                offset: 0,
            },
            Instruction::Halt,
        ]);
        // Revoke privilege; allow only the code page.
        rig.watchdog.set_privileged(0, false);
        rig.watchdog.allow(0, crate::PhysRange::try_new(0x1000, 0x2000).unwrap());
        rig.step();
        let r = rig.step();
        assert!(matches!(r.outcome, StepOutcome::Fault(Fault::Watchdog { paddr: 0x2000, .. })));
    }

    #[test]
    fn predecode_never_serves_stale_bytes() {
        // Execute an instruction (warming the predecode cache), rewrite
        // its bytes through a path the store-invalidation hook never
        // sees (direct physical write, as DMA or a rollback engine
        // would), loop back, and require the *new* bytes to execute.
        let mut rig = Rig::new(&[
            Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 1 },
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 0x1000 },
            Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::T0, offset: 0 },
        ]);
        rig.step(); // a0 = 1, decode of 0x1000 now cached
        assert_eq!(rig.core.reg(Reg::A0), 1);
        let patched = Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 99 };
        rig.phys.write_u32(0x1000, patched.encode().unwrap());
        rig.step(); // t0 = 0x1000
        rig.step(); // jump back to 0x1000
        rig.step(); // must execute the patched instruction
        assert_eq!(rig.core.reg(Reg::A0), 99, "stale predecoded instruction executed");
    }

    #[test]
    fn context_roundtrip() {
        let mut rig = Rig::new(&[Instruction::Halt]);
        let mut ctx = rig.core.context();
        ctx.regs[5] = 99;
        ctx.pc = 0x1F00;
        rig.core.set_context(ctx);
        assert_eq!(rig.core.pc(), 0x1F00);
        assert_eq!(rig.core.context().regs[5], 99);
    }
}
