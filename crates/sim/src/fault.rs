//! Architectural faults.

use std::fmt;

/// Kind of memory access, for fault reporting and permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch.
    Execute,
    /// Data load.
    Read,
    /// Data store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Execute => "execute",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// A fault raised by a core. Faults stop the core at the offending
/// instruction; INDRA's recovery path (or a conventional OS kill) decides
/// what happens next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The fetched word does not decode (e.g. control fell into zeroed or
    /// data memory).
    IllegalInstruction {
        /// Faulting PC.
        pc: u32,
        /// The word that failed to decode.
        word: u32,
    },
    /// No translation for the address.
    PageFault {
        /// Faulting virtual address.
        vaddr: u32,
        /// What the access was trying to do.
        kind: AccessKind,
    },
    /// Translation exists but forbids this access (e.g. store to a
    /// read-only code page, or fetch from a non-executable page when the
    /// kernel enforces NX).
    Protection {
        /// Faulting virtual address.
        vaddr: u32,
        /// What the access was trying to do.
        kind: AccessKind,
    },
    /// The INDRA memory watchdog blocked a physical access outside the
    /// core's assigned ranges (§3.1.1 — resurrectee tried to touch
    /// resurrector memory).
    Watchdog {
        /// The offending physical address.
        paddr: u32,
        /// What the access was trying to do.
        kind: AccessKind,
    },
    /// The monitor stopped this core after detecting corruption; carries
    /// the violation's trace sequence number for the audit log.
    MonitorStop {
        /// Monitor-assigned violation id.
        violation: u64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            Fault::PageFault { vaddr, kind } => write!(f, "page fault: {kind} at {vaddr:#010x}"),
            Fault::Protection { vaddr, kind } => {
                write!(f, "protection violation: {kind} at {vaddr:#010x}")
            }
            Fault::Watchdog { paddr, kind } => {
                write!(f, "memory watchdog blocked {kind} of physical {paddr:#010x}")
            }
            Fault::MonitorStop { violation } => {
                write!(f, "stopped by resurrector (violation #{violation})")
            }
        }
    }
}

impl std::error::Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let faults = [
            Fault::IllegalInstruction { pc: 0x400000, word: 0 },
            Fault::PageFault { vaddr: 0x1234, kind: AccessKind::Read },
            Fault::Protection { vaddr: 0x1234, kind: AccessKind::Write },
            Fault::Watchdog { paddr: 0x9000_0000, kind: AccessKind::Write },
            Fault::MonitorStop { violation: 7 },
        ];
        for f in faults {
            assert!(!f.to_string().is_empty());
        }
        assert!(faults[0].to_string().contains("0x00400000"));
    }
}
