//! The resurrectee→resurrector hardware trace FIFO (§3.2, Fig. 12).
//!
//! A bounded queue in shared on-chip storage. The producing core checks
//! capacity *before* committing an instruction that would emit events;
//! when full, the core stalls until the monitor drains entries. Fig. 12
//! sweeps the entry count: 16 entries starve the resurrectee, 32+
//! saturates.

use std::collections::VecDeque;

use crate::{StampedEvent, TraceEvent};

/// FIFO occupancy statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoStats {
    /// Events pushed.
    pub pushes: u64,
    /// Events popped by the monitor.
    pub pops: u64,
    /// Producer stall episodes caused by a full queue.
    pub full_stalls: u64,
    /// Maximum occupancy observed.
    pub high_water: usize,
}

/// The bounded trace queue.
#[derive(Debug)]
pub struct TraceFifo {
    capacity: usize,
    queue: VecDeque<StampedEvent>,
    stats: FifoStats,
}

impl TraceFifo {
    /// Creates an empty FIFO with space for `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> TraceFifo {
        assert!(capacity > 0, "FIFO needs at least one entry");
        TraceFifo {
            capacity,
            queue: VecDeque::with_capacity(capacity),
            stats: FifoStats::default(),
        }
    }

    /// Entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when no events are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Free slots.
    #[must_use]
    pub fn free(&self) -> usize {
        self.capacity - self.queue.len()
    }

    /// Records a producer stall (core-side bookkeeping for Fig. 12).
    pub fn note_full_stall(&mut self) {
        self.stats.full_stalls += 1;
    }

    /// Pushes an event; returns `false` (and drops nothing) when full —
    /// the caller must stall and retry.
    pub fn push(&mut self, event: TraceEvent, cycle: u64, asid: u16) -> bool {
        if self.queue.len() == self.capacity {
            return false;
        }
        self.queue.push_back(StampedEvent { event, cycle, asid });
        self.stats.pushes += 1;
        self.stats.high_water = self.stats.high_water.max(self.queue.len());
        true
    }

    /// Pops the oldest event (monitor side).
    pub fn pop(&mut self) -> Option<StampedEvent> {
        let e = self.queue.pop_front();
        if e.is_some() {
            self.stats.pops += 1;
        }
        e
    }

    /// Peeks at the oldest event without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&StampedEvent> {
        self.queue.front()
    }

    /// Drops all queued events (used when a resurrectee is rolled back:
    /// its pending, now-meaningless trace is discarded).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Drops only the events of one address space — with several
    /// resurrectees sharing the FIFO, a rollback must not destroy the
    /// trace continuity of the *other* services.
    pub fn clear_asid(&mut self, asid: u16) {
        self.queue.retain(|e| e.asid != asid);
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> FifoStats {
        self.stats
    }

    /// Captures the FIFO's full mutable state (queued events and stats).
    #[must_use]
    pub fn save_state(&self) -> FifoState {
        FifoState { queue: self.queue.iter().copied().collect(), stats: self.stats }
    }

    /// Restores state captured by [`TraceFifo::save_state`].
    ///
    /// # Panics
    ///
    /// Panics when the saved queue exceeds this FIFO's capacity.
    pub fn restore_state(&mut self, state: &FifoState) {
        assert!(state.queue.len() <= self.capacity, "FIFO state exceeds capacity");
        self.queue.clear();
        self.queue.extend(state.queue.iter().copied());
        self.stats = state.stats;
    }
}

/// Complete mutable state of a [`TraceFifo`], captured by
/// [`TraceFifo::save_state`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FifoState {
    /// Queued events, oldest first.
    pub queue: Vec<StampedEvent>,
    /// Accumulated statistics.
    pub stats: FifoStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pc: u32) -> TraceEvent {
        TraceEvent::IndirectJump { pc, target: 0 }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut f = TraceFifo::new(4);
        for i in 0..3u32 {
            assert!(f.push(ev(i), u64::from(i), 1));
        }
        assert_eq!(f.len(), 3);
        for i in 0..3u32 {
            let e = f.pop().unwrap();
            assert_eq!(e.cycle, u64::from(i));
        }
        assert!(f.pop().is_none());
    }

    #[test]
    fn push_fails_when_full() {
        let mut f = TraceFifo::new(2);
        assert!(f.push(ev(0), 0, 1));
        assert!(f.push(ev(1), 1, 1));
        assert!(!f.push(ev(2), 2, 1), "third push must be refused");
        assert_eq!(f.len(), 2);
        f.pop();
        assert!(f.push(ev(2), 3, 1), "space freed after pop");
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = TraceFifo::new(8);
        f.push(ev(0), 0, 1);
        f.push(ev(1), 0, 1);
        f.pop();
        f.push(ev(2), 0, 1);
        assert_eq!(f.stats().high_water, 2);
    }

    #[test]
    fn clear_discards_pending() {
        let mut f = TraceFifo::new(4);
        f.push(ev(0), 0, 1);
        f.push(ev(1), 0, 1);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.stats().pushes, 2, "stats survive a clear");
    }

    #[test]
    fn clear_asid_spares_other_services() {
        let mut f = TraceFifo::new(8);
        f.push(ev(0), 0, 1);
        f.push(ev(1), 0, 2);
        f.push(ev(2), 0, 1);
        f.clear_asid(1);
        assert_eq!(f.len(), 1);
        assert_eq!(f.pop().unwrap().asid, 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = TraceFifo::new(0);
    }
}
