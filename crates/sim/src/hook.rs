//! Memory-access hooks for checkpoint/backup engines.
//!
//! INDRA's delta backup engine (and the baseline checkpointing schemes it
//! is compared against in Table 3 / Fig. 14) observe the resurrectee's
//! committed loads and stores: a store may need its line backed up before
//! being overwritten (Fig. 4), and — uniquely to INDRA — a load may need
//! to lazily restore a rolled-back line first (Fig. 5). The hook is
//! invoked by the core *before* the architectural access happens.

use indra_mem::PhysicalMemory;

/// Observer of committed memory accesses, invoked pre-access.
pub trait BackupHook {
    /// Called before a load of `vaddr`/`paddr` commits. The implementation
    /// may rewrite memory (rollback-on-demand). Returns extra stall cycles
    /// charged to the core.
    fn before_read(&mut self, asid: u16, vaddr: u32, paddr: u32, phys: &mut PhysicalMemory) -> u32;

    /// Called before a store to `vaddr`/`paddr` commits, while memory still
    /// holds the *old* value. Returns extra stall cycles charged to the
    /// core.
    fn before_write(&mut self, asid: u16, vaddr: u32, paddr: u32, phys: &mut PhysicalMemory)
        -> u32;
}

/// A hook that does nothing — a machine with no backup hardware.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopHook;

impl BackupHook for NoopHook {
    fn before_read(&mut self, _: u16, _: u32, _: u32, _: &mut PhysicalMemory) -> u32 {
        0
    }

    fn before_write(&mut self, _: u16, _: u32, _: u32, _: &mut PhysicalMemory) -> u32 {
        0
    }
}
