#![warn(missing_docs)]
//! # indra-sim — the asymmetric multicore simulator
//!
//! The cycle-level machine substrate for the INDRA reproduction: the
//! paper's evaluation platform was Bochs (functional, full-system) plus
//! TAXI/SimpleScalar (timing); this crate plays both roles for the IR32
//! ISA.
//!
//! The pieces, mirroring §2.3 and §3.1–3.2 of the paper:
//!
//! * [`Core`] — an in-order, width-configurable cycle-accounting CPU
//!   executing IR32 with architecturally exact semantics.
//! * [`Machine`] — the multicore: per-core cache hierarchies, shared
//!   SDRAM, physical memory pools (RTS / backup / service), the
//!   asymmetric boot sequence.
//! * [`MemoryWatchdog`] — the hardware range check giving resurrectees
//!   access only to their assigned physical memory.
//! * [`TraceFifo`] + [`TraceEvent`] — the commit-stage trace stream from
//!   resurrectees to the resurrector, with stall-on-full semantics.
//! * [`CamFilter`] — the small CAM that filters redundant code-origin
//!   checks (Fig. 10).
//! * [`BackupHook`] — the seam where checkpoint/backup engines (INDRA's
//!   delta engine and the Table 3 baselines, implemented in `indra-core`)
//!   observe committed loads and stores.
//!
//! ```
//! use indra_sim::{Machine, MachineConfig, CoreStep};
//! use indra_isa::assemble;
//!
//! let mut m = Machine::new(MachineConfig::default());
//! m.boot_asymmetric();
//! let img = assemble("demo", "main:\n li a0, 41\n addi a0, a0, 1\n halt\n").unwrap();
//! m.create_space(7);
//! m.load_image(7, &img).unwrap();
//! m.core_mut(1).set_asid(7);
//! m.core_mut(1).set_pc(img.entry);
//! while let CoreStep::Executed = m.step_core_simple(1) {}
//! assert_eq!(m.core(1).reg(indra_isa::Reg::A0), 42);
//! ```

mod cam;
mod config;
mod cpu;
mod fault;
mod fifo;
mod hook;
mod machine;
mod paging;
mod predecode;
mod superblock;
mod trace;
mod watchdog;

pub use cam::{CamFilter, CamState, CamStats};
pub use config::{CoreConfig, CoreRole, MachineConfig};
pub use cpu::{Core, CoreState, CpuContext, StepEnv, StepOutcome, StepResult};
pub use fault::{AccessKind, Fault};
pub use fifo::{FifoState, FifoStats, TraceFifo};
pub use hook::{BackupHook, NoopHook};
pub use machine::{CoreStep, LoadError, Machine, MachineState, SpaceState};
pub use paging::{AddressSpace, Pte};
pub use predecode::{PredecodeCache, PredecodeStats};
pub use superblock::{SuperblockCache, SuperblockStats};
pub use trace::{EventBuf, StampedEvent, TraceEvent};
pub use watchdog::{
    EmptyPhysRange, MemoryWatchdog, PhysRange, WatchdogCoreState, WatchdogState, WatchdogStats,
};
