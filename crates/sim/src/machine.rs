//! The asymmetric multicore machine.
//!
//! [`Machine`] owns the hardware: cores, per-core hierarchies, shared
//! SDRAM, physical memory, the memory watchdog, the trace FIFO and the
//! per-core CAM filters. Physical memory is partitioned at boot exactly
//! as §3.1.2 describes: the resurrector's runtime system occupies a
//! region hidden from every resurrectee; backup pages live in a second
//! hidden pool; service frames make up the rest and are the only range
//! the watchdog lets resurrectees touch.

use indra_isa::Image;
use indra_mem::{
    CoreMemState, CoreMemory, DramState, FrameAllocator, FrameAllocatorState, PhysMemState,
    PhysicalMemory, Sdram, PAGE_SHIFT, PAGE_SIZE,
};

use crate::cpu::BlockExit;
use crate::superblock::{self, Enter};
use crate::{
    AddressSpace, BackupHook, CamFilter, CamState, Core, CoreRole, CoreState, EventBuf, Fault,
    FifoState, MachineConfig, MemoryWatchdog, NoopHook, PhysRange, PredecodeCache, PredecodeStats,
    Pte, StepEnv, StepOutcome, SuperblockCache, SuperblockStats, TraceEvent, TraceFifo,
    WatchdogState,
};

/// Address-space registry indexed directly by ASID: the per-step
/// `asid → AddressSpace` resolution is an array index, not a hash-map
/// walk. Spaces are boxed so a sparse high ASID costs one pointer slot.
#[derive(Debug, Default)]
struct SpaceTable {
    slots: Vec<Option<Box<AddressSpace>>>,
}

impl SpaceTable {
    fn get(&self, asid: u16) -> Option<&AddressSpace> {
        self.slots.get(asid as usize)?.as_deref()
    }

    fn get_mut(&mut self, asid: u16) -> Option<&mut AddressSpace> {
        self.slots.get_mut(asid as usize)?.as_deref_mut()
    }

    fn insert(&mut self, asid: u16, space: AddressSpace) {
        let i = asid as usize;
        if self.slots.len() <= i {
            self.slots.resize_with(i + 1, || None);
        }
        self.slots[i] = Some(Box::new(space));
    }

    fn remove(&mut self, asid: u16) -> Option<AddressSpace> {
        self.slots.get_mut(asid as usize)?.take().map(|b| *b)
    }

    fn iter(&self) -> impl Iterator<Item = &AddressSpace> {
        self.slots.iter().filter_map(Option::as_deref)
    }

    fn clear(&mut self) {
        self.slots.clear();
    }
}

/// Frames reserved for the resurrector's runtime system (the paper's RTS
/// is "less than 10 MB" including the stripped-down OS).
const RTS_FRAMES: u32 = 2560; // 10 MiB
/// Frames reserved for delta backup pages (hidden from resurrectees).
const BACKUP_FRAMES: u32 = 16 * 1024; // 64 MiB

/// Outcome of advancing one core by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStep {
    /// One instruction retired.
    Executed,
    /// The core is halted.
    Halted,
    /// The resurrector has this core stalled.
    Stalled,
    /// The trace FIFO had no room; nothing executed. The caller decides
    /// how much wall-clock the stall costs (it depends on the monitor).
    FifoStalled,
    /// The core is parked on a `syscall`; the OS must service it.
    Syscall {
        /// Syscall code.
        code: u16,
    },
    /// The core faulted.
    Fault(Fault),
}

/// Error from loading an image into an address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Physical frames exhausted.
    OutOfFrames,
    /// The image failed validation.
    BadImage(String),
    /// No such address space.
    NoSpace(u16),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::OutOfFrames => f.write_str("out of physical frames"),
            LoadError::BadImage(m) => write!(f, "invalid image: {m}"),
            LoadError::NoSpace(asid) => write!(f, "no address space with asid {asid}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// The simulated multicore.
pub struct Machine {
    cfg: MachineConfig,
    cores: Vec<Core>,
    mems: Vec<CoreMemory>,
    cams: Vec<CamFilter>,
    dram: Sdram,
    phys: PhysicalMemory,
    watchdog: MemoryWatchdog,
    fifo: TraceFifo,
    spaces: SpaceTable,
    predecode: Vec<PredecodeCache>,
    superblocks: Vec<SuperblockCache>,
    rts_frames: FrameAllocator,
    backup_frames: FrameAllocator,
    service_frames: FrameAllocator,
    monitoring: bool,
    booted: bool,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("booted", &self.booted)
            .field("monitoring", &self.monitoring)
            .finish()
    }
}

impl Machine {
    /// Builds the machine described by `cfg` (cold caches, nothing booted).
    ///
    /// # Panics
    ///
    /// Panics when `cfg.phys_frames` is too small to hold the RTS and
    /// backup pools.
    #[must_use]
    pub fn new(cfg: MachineConfig) -> Machine {
        assert!(
            cfg.phys_frames > RTS_FRAMES + BACKUP_FRAMES + 1024,
            "need more physical frames than the reserved pools"
        );
        let n = cfg.cores.len();
        let cores = (0..n).map(|_| Core::new(cfg.core)).collect();
        let mems = (0..n).map(|_| CoreMemory::new(cfg.mem)).collect();
        let cams = (0..n)
            .map(|_| {
                if cfg.cam_entries == 0 {
                    CamFilter::disabled()
                } else {
                    CamFilter::new(cfg.cam_entries)
                }
            })
            .collect();
        Machine {
            cores,
            mems,
            cams,
            dram: Sdram::new(cfg.dram),
            phys: PhysicalMemory::new(),
            watchdog: MemoryWatchdog::new(n),
            fifo: TraceFifo::new(cfg.fifo_entries),
            spaces: SpaceTable::default(),
            predecode: (0..n).map(|_| PredecodeCache::new(cfg.fast_paths)).collect(),
            superblocks: (0..n).map(|_| SuperblockCache::new(cfg.superblocks)).collect(),
            rts_frames: FrameAllocator::new(0, RTS_FRAMES),
            backup_frames: FrameAllocator::new(RTS_FRAMES, RTS_FRAMES + BACKUP_FRAMES),
            service_frames: FrameAllocator::new(RTS_FRAMES + BACKUP_FRAMES, cfg.phys_frames),
            monitoring: false,
            booted: false,
            cfg,
        }
    }

    /// The INDRA boot sequence (§3.1.2): the resurrector boots first from
    /// flash, takes privileged access, hides the RTS and backup pools, and
    /// only then releases the resurrectees with watchdog ranges covering
    /// the service pool alone.
    pub fn boot_asymmetric(&mut self) {
        let service_base = (RTS_FRAMES + BACKUP_FRAMES) << PAGE_SHIFT;
        let service_end = self.cfg.phys_frames << PAGE_SHIFT;
        for (id, role) in self.cfg.cores.clone().into_iter().enumerate() {
            match role {
                CoreRole::Resurrector => self.watchdog.set_privileged(id, true),
                CoreRole::Resurrectee => {
                    self.watchdog.set_privileged(id, false);
                    self.watchdog.clear(id);
                    // An empty service pool (misconfigured frame split)
                    // grants the resurrectee nothing: its first access
                    // trips the watchdog instead of panicking the host.
                    if let Ok(range) = PhysRange::try_new(service_base, service_end) {
                        self.watchdog.allow(id, range);
                    }
                }
            }
        }
        self.monitoring = self.cfg.resurrector().is_some();
        self.booted = true;
    }

    /// Boots every core with equal privilege and monitoring off
    /// (reconfigurability, §2.3.4).
    pub fn boot_symmetric(&mut self) {
        for id in 0..self.cores.len() {
            self.watchdog.set_privileged(id, true);
        }
        self.monitoring = false;
        self.booted = true;
    }

    /// Whether trace monitoring is active.
    #[must_use]
    pub fn monitoring(&self) -> bool {
        self.monitoring
    }

    /// Enables or disables trace monitoring (events are dropped when off —
    /// the "without monitoring support" baseline of Fig. 11).
    pub fn set_monitoring(&mut self, on: bool) {
        self.monitoring = on;
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    // ---- component access ------------------------------------------------

    /// Core `id`.
    #[must_use]
    pub fn core(&self, id: usize) -> &Core {
        &self.cores[id]
    }

    /// Mutable core `id`.
    pub fn core_mut(&mut self, id: usize) -> &mut Core {
        &mut self.cores[id]
    }

    /// Core count.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Core `id`'s cache hierarchy.
    #[must_use]
    pub fn core_mem(&self, id: usize) -> &CoreMemory {
        &self.mems[id]
    }

    /// Mutable cache hierarchy (stat resets, rollback flushes).
    pub fn core_mem_mut(&mut self, id: usize) -> &mut CoreMemory {
        &mut self.mems[id]
    }

    /// Core `id`'s code-origin CAM filter.
    #[must_use]
    pub fn cam(&self, id: usize) -> &CamFilter {
        &self.cams[id]
    }

    /// Mutable CAM filter.
    pub fn cam_mut(&mut self, id: usize) -> &mut CamFilter {
        &mut self.cams[id]
    }

    /// The shared trace FIFO.
    #[must_use]
    pub fn fifo(&self) -> &TraceFifo {
        &self.fifo
    }

    /// Mutable trace FIFO (the monitor pops from here).
    pub fn fifo_mut(&mut self) -> &mut TraceFifo {
        &mut self.fifo
    }

    /// Shared DRAM.
    #[must_use]
    pub fn dram(&self) -> &Sdram {
        &self.dram
    }

    /// Physical memory contents.
    #[must_use]
    pub fn phys(&self) -> &PhysicalMemory {
        &self.phys
    }

    /// Mutable physical memory (DMA, loaders, backup engine).
    pub fn phys_mut(&mut self) -> &mut PhysicalMemory {
        &mut self.phys
    }

    /// The memory watchdog.
    #[must_use]
    pub fn watchdog(&self) -> &MemoryWatchdog {
        &self.watchdog
    }

    /// Mutable watchdog (boot/reassignment).
    pub fn watchdog_mut(&mut self) -> &mut MemoryWatchdog {
        &mut self.watchdog
    }

    // ---- address spaces ----------------------------------------------------

    /// Creates an empty address space; replaces any existing one with the
    /// same ASID.
    pub fn create_space(&mut self, asid: u16) {
        let mut space = AddressSpace::new(asid);
        space.set_fast_paths(self.cfg.fast_paths);
        self.spaces.insert(asid, space);
        // A fresh space restarts its generation counter, so a superblock
        // pinned under a *previous* space with this ASID could validate
        // falsely; ASID creation is rare enough to flush wholesale.
        for s in &mut self.superblocks {
            s.flush();
        }
    }

    /// Destroys an address space.
    pub fn destroy_space(&mut self, asid: u16) -> Option<AddressSpace> {
        self.spaces.remove(asid)
    }

    /// The address space for `asid`.
    #[must_use]
    pub fn space(&self, asid: u16) -> Option<&AddressSpace> {
        self.spaces.get(asid)
    }

    /// Mutable address space.
    pub fn space_mut(&mut self, asid: u16) -> Option<&mut AddressSpace> {
        self.spaces.get_mut(asid)
    }

    /// Splits mutable borrows of one address space and physical memory —
    /// the signature checkpoint schemes need for rollback work.
    pub fn space_and_phys_mut(
        &mut self,
        asid: u16,
    ) -> Option<(&mut AddressSpace, &mut PhysicalMemory)> {
        let space = self.spaces.get_mut(asid)?;
        Some((space, &mut self.phys))
    }

    /// Start and end physical page numbers of the hidden backup-page pool.
    /// The INDRA backup engine claims this pool at construction; the
    /// machine itself never allocates from it afterwards.
    #[must_use]
    pub fn backup_pool_ppns(&self) -> (u32, u32) {
        (RTS_FRAMES, RTS_FRAMES + BACKUP_FRAMES)
    }

    /// Allocates a frame from the service pool (resurrectee-visible).
    pub fn alloc_service_frame(&mut self) -> Option<u32> {
        self.service_frames.alloc()
    }

    /// Releases a service frame.
    pub fn release_service_frame(&mut self, ppn: u32) {
        self.service_frames.release(ppn);
    }

    /// Allocates a frame from the hidden backup pool (§3.3.1: backup pages
    /// are invisible to service applications).
    pub fn alloc_backup_frame(&mut self) -> Option<u32> {
        self.backup_frames.alloc()
    }

    /// Releases a backup frame.
    pub fn release_backup_frame(&mut self, ppn: u32) {
        self.backup_frames.release(ppn);
    }

    /// Allocates a frame from the resurrector's private pool.
    pub fn alloc_rts_frame(&mut self) -> Option<u32> {
        self.rts_frames.alloc()
    }

    /// Live frames in the backup pool (memory overhead accounting).
    #[must_use]
    pub fn backup_frames_live(&self) -> u32 {
        self.backup_frames.live_frames()
    }

    /// Maps `image` into address space `asid` using service-pool frames
    /// and returns the mapped page count.
    ///
    /// # Errors
    ///
    /// [`LoadError::BadImage`] if validation fails, [`LoadError::NoSpace`]
    /// for an unknown ASID, [`LoadError::OutOfFrames`] when the pool runs
    /// dry.
    pub fn load_image(&mut self, asid: u16, image: &Image) -> Result<u32, LoadError> {
        image.validate().map_err(LoadError::BadImage)?;
        if self.spaces.get(asid).is_none() {
            return Err(LoadError::NoSpace(asid));
        }
        let mut mapped = 0;
        for seg in &image.segments {
            let pages = seg.size.div_ceil(PAGE_SIZE);
            for p in 0..pages {
                let vpn = (seg.vaddr >> PAGE_SHIFT) + p;
                let ppn = self.service_frames.alloc().ok_or(LoadError::OutOfFrames)?;
                let pte = Pte {
                    ppn,
                    read: seg.perms.read,
                    write: seg.perms.write,
                    // Pre-NX hardware executes anything readable; the
                    // image's intended attributes still reach the monitor.
                    execute: seg.perms.execute || !self.cfg.enforce_nx,
                };
                self.spaces.get_mut(asid).expect("checked above").map(vpn, pte);
                mapped += 1;
                // Copy initialized bytes for this page.
                let off = p * PAGE_SIZE;
                if off < seg.data.len() as u32 {
                    let len = ((seg.data.len() as u32) - off).min(PAGE_SIZE) as usize;
                    let start = off as usize;
                    self.phys.write_bytes(ppn << PAGE_SHIFT, &seg.data[start..start + len]);
                }
            }
        }
        Ok(mapped)
    }

    /// Maps one fresh zeroed service page at `vpn` with permissions
    /// `(r, w, x)`, returning its PPN.
    pub fn map_fresh_page(
        &mut self,
        asid: u16,
        vpn: u32,
        r: bool,
        w: bool,
        x: bool,
    ) -> Result<u32, LoadError> {
        if self.spaces.get(asid).is_none() {
            return Err(LoadError::NoSpace(asid));
        }
        let ppn = self.service_frames.alloc().ok_or(LoadError::OutOfFrames)?;
        // Zero the frame: it may be recycled from a killed child.
        self.phys.write_bytes(ppn << PAGE_SHIFT, &[0u8; PAGE_SIZE as usize]);
        let execute = x || !self.cfg.enforce_nx;
        self.spaces
            .get_mut(asid)
            .expect("checked above")
            .map(vpn, Pte { ppn, read: r, write: w, execute });
        Ok(ppn)
    }

    // ---- execution -------------------------------------------------------

    /// Whether core `id` is subject to trace monitoring.
    fn is_monitored(&self, id: usize) -> bool {
        self.monitoring && self.cfg.cores[id] == CoreRole::Resurrectee
    }

    /// Advances core `id` by one instruction, threading `hook` through its
    /// memory accesses. Events from monitored cores go through the CAM
    /// filter and into the FIFO; if the FIFO might not fit them, the core
    /// does not execute and [`CoreStep::FifoStalled`] is returned.
    pub fn step_core(&mut self, id: usize, hook: &mut dyn BackupHook) -> CoreStep {
        if self.cores[id].is_halted() {
            return CoreStep::Halted;
        }
        if self.cores[id].is_stalled() {
            return CoreStep::Stalled;
        }
        let monitored = self.is_monitored(id);
        // An instruction can emit at most 2 events (code fill + control).
        if monitored && self.fifo.free() < 2 {
            self.fifo.note_full_stall();
            return CoreStep::FifoStalled;
        }
        let asid = self.cores[id].asid();
        let Some(space) = self.spaces.get(asid) else {
            return CoreStep::Fault(Fault::PageFault {
                vaddr: self.cores[id].pc(),
                kind: crate::AccessKind::Execute,
            });
        };
        let mut env = StepEnv {
            space,
            mem: &mut self.mems[id],
            dram: &mut self.dram,
            phys: &mut self.phys,
            watchdog: &mut self.watchdog,
            hook,
            predecode: &mut self.predecode[id],
            superblocks: &mut self.superblocks[id],
            core_id: id,
        };
        let result = self.cores[id].step(&mut env);
        self.route_events(id, asid, monitored, &result.events);

        match result.outcome {
            StepOutcome::Executed => CoreStep::Executed,
            StepOutcome::Halted => CoreStep::Halted,
            StepOutcome::Syscall { code } => CoreStep::Syscall { code },
            StepOutcome::Fault(f) => CoreStep::Fault(f),
        }
    }

    /// Routes one instruction's trace events: through the core's CAM
    /// filter (which mutates whether or not the core is monitored) and —
    /// for monitored cores — into the trace FIFO at the core's current
    /// cycle stamp, charging the per-event producer cost.
    fn route_events(&mut self, id: usize, asid: u16, monitored: bool, events: &EventBuf) {
        let cycle = self.cores[id].cycles();
        let mut pushed_events = 0u32;
        for &event in events.iter() {
            // The CAM filter squashes redundant code-origin checks in the
            // resurrectee before they consume FIFO slots (§3.2.2).
            if let TraceEvent::CodeFill { page_vaddr, .. } = event {
                if self.cams[id].filter(page_vaddr) {
                    continue;
                }
            }
            if monitored {
                let pushed = self.fifo.push(event, cycle, asid);
                debug_assert!(pushed, "capacity reserved before stepping");
                pushed_events += 1;
            }
        }
        if pushed_events > 0 {
            // Commit-stage trace-packet cost (port arbitration into the
            // shared FIFO) — per-event, producer side.
            self.cores[id].add_stall_cycles(u64::from(pushed_events * self.cfg.trace_push_cycles));
        }
    }

    /// Advances core `id` by *up to* `max_insns` instructions through the
    /// superblock engine, falling back to exactly one [`Machine::step_core`]
    /// when no valid block covers the PC (or batching is unsafe).
    /// Returns the step outcome and how many instructions retired.
    ///
    /// Batching preserves the interpreter's observable order: a block
    /// stops after the first event-producing instruction (events then
    /// reach the FIFO at their exact interpreted cycle stamps), FIFO
    /// occupancy is constant while a block runs (nothing pops at machine
    /// level, and a pushing instruction is always the last), and
    /// syscalls, faults and halts end the block where the interpreter
    /// would have stopped.
    ///
    /// `cycle_horizon` additionally ends the block at the first
    /// instruction boundary at or past that core-clock value. The INDRA
    /// control loop passes the monitor's completion preview of the
    /// oldest queued trace event so its between-instruction FIFO drain
    /// (and any violation recovery) observes the same core state as the
    /// one-instruction reference loop; pass `u64::MAX` when nothing
    /// drains the FIFO concurrently.
    pub fn step_core_batch(
        &mut self,
        id: usize,
        hook: &mut dyn BackupHook,
        max_insns: u64,
        cycle_horizon: u64,
    ) -> (CoreStep, u64) {
        if self.cores[id].is_halted() {
            return (CoreStep::Halted, 0);
        }
        if self.cores[id].is_stalled() {
            return (CoreStep::Stalled, 0);
        }
        let monitored = self.is_monitored(id);
        if monitored && self.fifo.free() < 2 {
            self.fifo.note_full_stall();
            return (CoreStep::FifoStalled, 0);
        }
        let asid = self.cores[id].asid();
        // Chained block dispatch: a clean block end whose instruction
        // produced no trace events changes nothing any concurrent
        // observer can see (FIFO occupancy is constant, the horizon
        // check bounds the drain loop's view), so the next block starts
        // without returning to the caller. Everything else — events,
        // traps, faults, self-modification, budget, horizon — falls out
        // of the loop at the interpreter-identical boundary.
        let mut total = 0u64;
        if self.cfg.superblocks && max_insns > 1 {
            while let Some(space) = self.spaces.get(asid) {
                let pc = self.cores[id].pc();
                match self.superblocks[id].enter(
                    pc,
                    asid,
                    space.generation(),
                    self.watchdog.generation(),
                    &self.phys,
                ) {
                    Enter::Run(block) => {
                        let mut events = EventBuf::new();
                        let (executed, exit) = {
                            let mut env = StepEnv {
                                space,
                                mem: &mut self.mems[id],
                                dram: &mut self.dram,
                                phys: &mut self.phys,
                                watchdog: &mut self.watchdog,
                                hook,
                                predecode: &mut self.predecode[id],
                                superblocks: &mut self.superblocks[id],
                                core_id: id,
                            };
                            self.cores[id].run_block(
                                &block,
                                &mut env,
                                &mut events,
                                max_insns - total,
                                cycle_horizon,
                            )
                        };
                        self.superblocks[id].note_block(executed, &exit);
                        self.superblocks[id].restore(block);
                        total += executed;
                        let quiet = events.is_empty();
                        self.route_events(id, asid, monitored, &events);
                        match exit {
                            BlockExit::Syscall { code } => {
                                return (CoreStep::Syscall { code }, total);
                            }
                            BlockExit::Halted => return (CoreStep::Halted, total),
                            BlockExit::Fault(f) => return (CoreStep::Fault(f), total),
                            BlockExit::End
                                if quiet
                                    && total < max_insns
                                    && self.cores[id].cycles() < cycle_horizon => {}
                            _ => return (CoreStep::Executed, total),
                        }
                    }
                    Enter::Translate => {
                        match superblock::translate(space, &self.watchdog, &self.phys, id, pc) {
                            Some(b) => self.superblocks[id].insert(Box::new(b)),
                            None => break,
                        }
                    }
                    Enter::Interpret => {
                        // Cold code interprets inline under the same
                        // continuation rules as a block: stop the moment
                        // an event reaches the FIFO (the next boundary
                        // may drain it), at the horizon, at budget, or at
                        // any trap. One `enter` per interpreted
                        // instruction keeps the heat dynamics identical
                        // to one-instruction dispatch.
                        let queued = self.fifo.len();
                        let step = self.step_core(id, hook);
                        match step {
                            CoreStep::Executed => {
                                total += 1;
                                if total >= max_insns
                                    || self.cores[id].cycles() >= cycle_horizon
                                    || self.fifo.len() != queued
                                {
                                    return (CoreStep::Executed, total);
                                }
                            }
                            CoreStep::Syscall { .. } | CoreStep::Halted => {
                                return (step, total + 1);
                            }
                            other => return (other, total),
                        }
                    }
                }
            }
            // Only reachable when the space vanished or translation
            // refused the entry; the interpreter below reproduces the
            // fault or makes one instruction of progress.
            if total > 0 && self.cores[id].cycles() >= cycle_horizon {
                return (CoreStep::Executed, total);
            }
        }
        let step = self.step_core(id, hook);
        let executed = match step {
            CoreStep::Executed | CoreStep::Syscall { .. } | CoreStep::Halted => 1,
            _ => 0,
        };
        (step, total + executed)
    }

    /// Steps an *unmonitored* core with no backup engine — convenience for
    /// baselines and tests.
    pub fn step_core_simple(&mut self, id: usize) -> CoreStep {
        let mut hook = NoopHook;
        self.step_core(id, &mut hook)
    }

    /// [`Machine::step_core_batch`] with no backup engine.
    pub fn step_core_batch_simple(&mut self, id: usize, max_insns: u64) -> (CoreStep, u64) {
        let mut hook = NoopHook;
        self.step_core_batch(id, &mut hook, max_insns, u64::MAX)
    }

    /// Stalls/flushes a resurrectee for recovery: freezes the core, clears
    /// its pending trace, invalidates its CAM (stale "verified" pages may
    /// be lies after rollback) and flushes its caches so rolled-back
    /// memory is re-read from DRAM.
    pub fn quiesce_for_recovery(&mut self, id: usize) {
        self.cores[id].set_stalled(true);
        // Only this service's pending (now meaningless) trace is dropped;
        // other resurrectees' events stay queued.
        let asid = self.cores[id].asid();
        self.fifo.clear_asid(asid);
        self.cams[id].invalidate();
        self.mems[id].flush_l1s();
        // Rolled-back memory may hold different code at the same
        // physical addresses; drop every derived decode with the CAM.
        self.predecode[id].flush();
        self.superblocks[id].flush();
    }

    /// Resumes a quiesced core after its context has been restored.
    pub fn resume_after_recovery(&mut self, id: usize) {
        self.cores[id].set_stalled(false);
    }

    /// Superblock-engine statistics for core `id` (host-side
    /// observability; never part of simulated state).
    #[must_use]
    pub fn superblock_stats(&self, id: usize) -> SuperblockStats {
        self.superblocks[id].stats()
    }

    /// Predecode-cache statistics for core `id` (host-side observability;
    /// never part of simulated state).
    #[must_use]
    pub fn predecode_stats(&self, id: usize) -> PredecodeStats {
        self.predecode[id].stats()
    }

    /// The store-tracking call site for machine-level write paths: drops
    /// every derived decode — predecoded instructions *and* superblocks —
    /// overlapping a physically written range, on every core (these
    /// paths are not tied to one core's store stream).
    fn invalidate_code(&mut self, paddr: u32, len: u32) {
        for (p, s) in self.predecode.iter_mut().zip(&mut self.superblocks) {
            superblock::invalidate_written_code(p, s, paddr, len);
        }
    }

    /// Verifies image placement by reading back the entry word through the
    /// address space — a loader self-check used by tests and the OS.
    #[must_use]
    pub fn read_virtual_u32(&self, asid: u16, vaddr: u32) -> Option<u32> {
        let space = self.spaces.get(asid)?;
        let paddr = space.translate(vaddr, crate::AccessKind::Read).ok()?;
        Some(self.phys.read_u32(paddr))
    }

    /// Writes a u32 through an address space (loader/DMA path, unchecked
    /// by the watchdog — this models privileged DMA used by the OS).
    pub fn write_virtual_u32(&mut self, asid: u16, vaddr: u32, value: u32) -> bool {
        let Some(space) = self.spaces.get(asid) else { return false };
        match space.translate(vaddr, crate::AccessKind::Write) {
            Ok(paddr) => {
                self.phys.write_u32(paddr, value);
                self.invalidate_code(paddr, 4);
                true
            }
            Err(_) => false,
        }
    }

    /// DMA-writes `data` into an address space, charging SDRAM burst time
    /// per line. `checked_core` models a DMA channel assigned to an
    /// unprivileged core: its physical targets go through the watchdog
    /// (§2.3.1 — only high-privilege cores command unrestricted DMA).
    /// Returns the transfer's cycle cost.
    ///
    /// # Errors
    ///
    /// Translation faults and watchdog violations abort the transfer
    /// (partial data may have landed, as real DMA would).
    pub fn dma_write_virtual(
        &mut self,
        asid: u16,
        vaddr: u32,
        data: &[u8],
        checked_core: Option<usize>,
    ) -> Result<u64, Fault> {
        let mut cycles = 0u64;
        let mut off = 0usize;
        while off < data.len() {
            let addr = vaddr + off as u32;
            let chunk = (64 - (addr % 64) as usize).min(data.len() - off);
            let paddr = {
                let space = self
                    .spaces
                    .get(asid)
                    .ok_or(Fault::PageFault { vaddr: addr, kind: crate::AccessKind::Write })?;
                space.translate(addr, crate::AccessKind::Write)?
            };
            if let Some(core) = checked_core {
                self.watchdog.check(core, paddr, crate::AccessKind::Write)?;
            }
            let (c, _) = self.dram.access(paddr, chunk as u32);
            cycles += u64::from(c);
            self.phys.write_bytes(paddr, &data[off..off + chunk]);
            self.invalidate_code(paddr, chunk as u32);
            off += chunk;
        }
        Ok(cycles)
    }

    /// DMA-reads `len` bytes out of an address space (NIC transmit, disk
    /// write), with the same watchdog semantics as
    /// [`Machine::dma_write_virtual`].
    ///
    /// # Errors
    ///
    /// Translation faults and watchdog violations abort the transfer.
    pub fn dma_read_virtual(
        &mut self,
        asid: u16,
        vaddr: u32,
        len: u32,
        checked_core: Option<usize>,
    ) -> Result<(Vec<u8>, u64), Fault> {
        let mut out = Vec::with_capacity(len as usize);
        let mut cycles = 0u64;
        let mut off = 0u32;
        while off < len {
            let addr = vaddr + off;
            let chunk = (64 - (addr % 64)).min(len - off);
            let paddr = {
                let space = self
                    .spaces
                    .get(asid)
                    .ok_or(Fault::PageFault { vaddr: addr, kind: crate::AccessKind::Read })?;
                space.translate(addr, crate::AccessKind::Read)?
            };
            if let Some(core) = checked_core {
                self.watchdog.check(core, paddr, crate::AccessKind::Read)?;
            }
            let (c, _) = self.dram.access(paddr, chunk);
            cycles += u64::from(c);
            let start = out.len();
            out.resize(start + chunk as usize, 0);
            self.phys.read_bytes(paddr, &mut out[start..]);
            off += chunk;
        }
        Ok((out, cycles))
    }

    /// Reads `len` bytes through an address space (read-only perms are
    /// sufficient; used by the OS to pull request buffers out).
    #[must_use]
    pub fn read_virtual_bytes(&self, asid: u16, vaddr: u32, len: u32) -> Option<Vec<u8>> {
        let space = self.spaces.get(asid)?;
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let paddr = space.translate(vaddr + i, crate::AccessKind::Read).ok()?;
            out.push(self.phys.read_u8(paddr));
        }
        Some(out)
    }

    /// Writes bytes through an address space (request delivery by the NIC
    /// model).
    pub fn write_virtual_bytes(&mut self, asid: u16, vaddr: u32, data: &[u8]) -> bool {
        // Translation is still per byte (a partial write lands exactly as
        // before on a mid-buffer fault), but store-tracking invalidation
        // batches contiguous physical runs through the shared call site.
        let mut run_start = 0u32;
        let mut run_len = 0u32;
        for (i, &b) in data.iter().enumerate() {
            let Some(space) = self.spaces.get(asid) else { return false };
            let paddr = match space.translate(vaddr + i as u32, crate::AccessKind::Write) {
                Ok(p) => p,
                Err(_) => {
                    self.invalidate_code(run_start, run_len);
                    return false;
                }
            };
            self.phys.write_u8(paddr, b);
            if run_len > 0 && paddr == run_start + run_len {
                run_len += 1;
            } else {
                self.invalidate_code(run_start, run_len);
                run_start = paddr;
                run_len = 1;
            }
        }
        self.invalidate_code(run_start, run_len);
        true
    }

    // ---- durable checkpoint state ----------------------------------------

    /// Captures the machine's complete mutable state — every core, cache,
    /// TLB, CAM, the DRAM row registers, physical memory contents, the
    /// watchdog, the trace FIFO, all address spaces and the three frame
    /// allocators. Restoring this state into a machine built with the same
    /// [`MachineConfig`] reproduces execution bit-exactly, including
    /// timing (warm caches, open rows, issue-group position).
    #[must_use]
    pub fn save_state(&self) -> MachineState {
        self.save_state_inner(true)
    }

    /// Like [`Machine::save_state`] but with `phys` left empty — for
    /// callers (e.g. incremental state digests) that walk physical
    /// memory separately and must not pay a full frame copy per capture.
    /// The result is **not** restorable; it exists to be encoded.
    #[must_use]
    pub fn save_state_sans_phys(&self) -> MachineState {
        self.save_state_inner(false)
    }

    fn save_state_inner(&self, with_phys: bool) -> MachineState {
        let mut spaces: Vec<SpaceState> = self
            .spaces
            .iter()
            .map(|s| {
                let mut pages: Vec<(u32, Pte)> = s.iter().collect();
                pages.sort_unstable_by_key(|&(vpn, _)| vpn);
                SpaceState { asid: s.asid(), pages }
            })
            .collect();
        spaces.sort_unstable_by_key(|s| s.asid);
        MachineState {
            cores: self.cores.iter().map(Core::save_state).collect(),
            mems: self.mems.iter().map(CoreMemory::save_state).collect(),
            cams: self.cams.iter().map(CamFilter::save_state).collect(),
            dram: self.dram.save_state(),
            phys: if with_phys { self.phys.save_state() } else { PhysMemState::default() },
            watchdog: self.watchdog.save_state(),
            fifo: self.fifo.save_state(),
            spaces,
            rts_frames: self.rts_frames.save_state(),
            backup_frames: self.backup_frames.save_state(),
            service_frames: self.service_frames.save_state(),
            monitoring: self.monitoring,
            booted: self.booted,
        }
    }

    /// Restores state captured by [`Machine::save_state`] into a machine
    /// built with the same configuration.
    ///
    /// # Panics
    ///
    /// Panics when the saved core count does not match this machine's.
    pub fn restore_state(&mut self, state: &MachineState) {
        assert_eq!(state.cores.len(), self.cores.len(), "machine state core-count mismatch");
        for (core, s) in self.cores.iter_mut().zip(&state.cores) {
            core.restore_state(s);
        }
        for (mem, s) in self.mems.iter_mut().zip(&state.mems) {
            mem.restore_state(s);
        }
        for (cam, s) in self.cams.iter_mut().zip(&state.cams) {
            cam.restore_state(s);
        }
        self.dram.restore_state(&state.dram);
        self.phys.restore_state(&state.phys);
        self.watchdog.restore_state(&state.watchdog);
        self.fifo.restore_state(&state.fifo);
        self.spaces.clear();
        for s in &state.spaces {
            let mut space = AddressSpace::new(s.asid);
            space.set_fast_paths(self.cfg.fast_paths);
            for &(vpn, pte) in &s.pages {
                space.map(vpn, pte);
            }
            self.spaces.insert(s.asid, space);
        }
        // Physical memory was just replaced wholesale: no derived
        // decode may survive the thaw.
        for p in &mut self.predecode {
            p.flush();
        }
        for s in &mut self.superblocks {
            s.flush();
        }
        self.rts_frames.restore_state(&state.rts_frames);
        self.backup_frames.restore_state(&state.backup_frames);
        self.service_frames.restore_state(&state.service_frames);
        self.monitoring = state.monitoring;
        self.booted = state.booted;
    }
}

/// One address space's saved page table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpaceState {
    /// The address-space tag.
    pub asid: u16,
    /// `(vpn, pte)` mappings sorted by virtual page number.
    pub pages: Vec<(u32, Pte)>,
}

/// Complete mutable state of a [`Machine`], captured by
/// [`Machine::save_state`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineState {
    /// Per-core architectural and accounting state.
    pub cores: Vec<CoreState>,
    /// Per-core cache/TLB hierarchies.
    pub mems: Vec<CoreMemState>,
    /// Per-core code-origin CAM filters.
    pub cams: Vec<CamState>,
    /// Shared SDRAM open-row registers and stats.
    pub dram: DramState,
    /// Physical memory contents.
    pub phys: PhysMemState,
    /// Watchdog policies and stats.
    pub watchdog: WatchdogState,
    /// Trace FIFO contents and stats.
    pub fifo: FifoState,
    /// Address spaces, sorted by ASID.
    pub spaces: Vec<SpaceState>,
    /// Resurrector private frame pool.
    pub rts_frames: FrameAllocatorState,
    /// Hidden backup frame pool.
    pub backup_frames: FrameAllocatorState,
    /// Service (resurrectee-visible) frame pool.
    pub service_frames: FrameAllocatorState,
    /// Whether trace monitoring is active.
    pub monitoring: bool,
    /// Whether a boot sequence has run.
    pub booted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use indra_isa::assemble;

    fn booted_machine() -> Machine {
        let mut m = Machine::new(MachineConfig::default());
        m.boot_asymmetric();
        m
    }

    fn load_and_start(m: &mut Machine, core: usize, asid: u16, src: &str) {
        let img = assemble("t", src).unwrap();
        m.create_space(asid);
        m.load_image(asid, &img).unwrap();
        m.core_mut(core).set_asid(asid);
        m.core_mut(core).set_pc(img.entry);
        let sp = img.initial_sp;
        m.core_mut(core).set_reg(indra_isa::Reg::SP, sp);
    }

    fn run_until_halt(m: &mut Machine, core: usize, max: usize) {
        for _ in 0..max {
            match m.step_core_simple(core) {
                CoreStep::Executed => continue,
                CoreStep::Halted => return,
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        panic!("no halt in {max} steps");
    }

    #[test]
    fn boot_partitions_memory() {
        let m = booted_machine();
        assert!(m.watchdog().is_privileged(0));
        assert!(!m.watchdog().is_privileged(1));
        assert!(m.monitoring());
    }

    #[test]
    fn program_runs_on_resurrectee() {
        let mut m = booted_machine();
        load_and_start(&mut m, 1, 10, "main:\n li a0, 5\n addi a0, a0, 2\n halt\n");
        run_until_halt(&mut m, 1, 100);
        assert_eq!(m.core(1).reg(indra_isa::Reg::A0), 7);
    }

    #[test]
    fn resurrectee_cannot_touch_rts_memory() {
        let mut m = booted_machine();
        // A program whose data page is force-remapped onto an RTS frame.
        load_and_start(
            &mut m,
            1,
            10,
            "main:\n la t0, buf\n lw a0, 0(t0)\n halt\n.data\nbuf: .word 1\n",
        );
        // Remap the data page to physical frame 0 (RTS pool).
        let data_vpn = indra_isa::DATA_BASE >> PAGE_SHIFT;
        m.space_mut(10)
            .unwrap()
            .map(data_vpn, Pte { ppn: 0, read: true, write: true, execute: false });
        let mut last = CoreStep::Executed;
        for _ in 0..100 {
            last = m.step_core_simple(1);
            if !matches!(last, CoreStep::Executed) {
                break;
            }
        }
        assert!(matches!(last, CoreStep::Fault(Fault::Watchdog { .. })), "got {last:?}");
    }

    #[test]
    fn resurrector_may_touch_everything() {
        let mut m = booted_machine();
        load_and_start(
            &mut m,
            0,
            9,
            "main:\n la t0, buf\n lw a0, 0(t0)\n halt\n.data\nbuf: .word 42\n",
        );
        let data_vpn = indra_isa::DATA_BASE >> PAGE_SHIFT;
        m.space_mut(9)
            .unwrap()
            .map(data_vpn, Pte { ppn: 0, read: true, write: true, execute: false });
        run_until_halt(&mut m, 0, 100);
    }

    #[test]
    fn monitored_core_fills_fifo() {
        let mut m = booted_machine();
        load_and_start(&mut m, 1, 10, "main:\n call f\n call f\n halt\nf:\n ret\n");
        for _ in 0..100 {
            match m.step_core_simple(1) {
                CoreStep::Executed => continue,
                CoreStep::Halted => break,
                CoreStep::FifoStalled => break,
                other => panic!("{other:?}"),
            }
        }
        assert!(m.fifo().stats().pushes > 0, "calls/returns/code fills were traced");
    }

    #[test]
    fn fifo_stall_when_full() {
        let cfg = MachineConfig { fifo_entries: 2, ..MachineConfig::default() };
        let mut m = Machine::new(cfg);
        m.boot_asymmetric();
        load_and_start(&mut m, 1, 10, "main:\n call f\n halt\nf:\n ret\n");
        // Without a monitor draining, the tiny FIFO fills and stalls.
        let mut saw_stall = false;
        for _ in 0..50 {
            match m.step_core_simple(1) {
                CoreStep::FifoStalled => {
                    saw_stall = true;
                    break;
                }
                CoreStep::Halted => break,
                _ => continue,
            }
        }
        assert!(saw_stall, "2-entry FIFO must backpressure");
        assert!(m.fifo().stats().full_stalls > 0);
    }

    #[test]
    fn unmonitored_machine_never_fifo_stalls() {
        let cfg = MachineConfig { fifo_entries: 2, ..MachineConfig::default() };
        let mut m = Machine::new(cfg);
        m.boot_asymmetric();
        m.set_monitoring(false);
        load_and_start(&mut m, 1, 10, "main:\n call f\n call f\n call f\n halt\nf:\n ret\n");
        run_until_halt(&mut m, 1, 200);
        assert_eq!(m.fifo().stats().pushes, 0);
    }

    #[test]
    fn syscall_surfaces_to_caller() {
        let mut m = booted_machine();
        load_and_start(&mut m, 1, 10, "main:\n li a0, 1\n syscall 5\n halt\n");
        let mut outcome = CoreStep::Executed;
        for _ in 0..50 {
            outcome = m.step_core_simple(1);
            if !matches!(outcome, CoreStep::Executed) {
                break;
            }
        }
        assert_eq!(outcome, CoreStep::Syscall { code: 5 });
        m.core_mut(1).finish_syscall(Some(0));
        run_until_halt(&mut m, 1, 50);
    }

    #[test]
    fn quiesce_clears_trace_state() {
        let mut m = booted_machine();
        // An endless request loop, so the core is still live when quiesced.
        load_and_start(&mut m, 1, 10, "main:\n call f\n j main\nf:\n ret\n");
        for _ in 0..20 {
            if !matches!(m.step_core_simple(1), CoreStep::Executed) {
                break;
            }
        }
        assert!(!m.fifo().is_empty());
        m.quiesce_for_recovery(1);
        assert!(m.fifo().is_empty());
        assert!(m.core(1).is_stalled());
        assert_eq!(m.step_core_simple(1), CoreStep::Stalled);
        m.resume_after_recovery(1);
        assert!(!m.core(1).is_stalled());
    }

    #[test]
    fn virtual_io_helpers() {
        let mut m = booted_machine();
        load_and_start(&mut m, 1, 10, "main:\n halt\n.data\nbuf: .space 16\n");
        let img_buf = indra_isa::DATA_BASE;
        assert!(m.write_virtual_bytes(10, img_buf, b"ping"));
        let back = m.read_virtual_bytes(10, img_buf, 4).unwrap();
        assert_eq!(&back, b"ping");
        assert!(m.write_virtual_u32(10, img_buf + 8, 0xABCD));
        assert_eq!(m.read_virtual_u32(10, img_buf + 8), Some(0xABCD));
        assert_eq!(m.read_virtual_u32(10, 0xFFFF_0000), None);
    }

    #[test]
    fn fresh_pages_are_zeroed() {
        let mut m = booted_machine();
        m.create_space(10);
        let ppn = m.map_fresh_page(10, 0x70000, true, true, false).unwrap();
        m.phys_mut().write_u32(ppn << PAGE_SHIFT, 7);
        m.space_mut(10).unwrap().unmap(0x70000);
        m.release_service_frame(ppn);
        // Next allocation may reuse the frame; it must come back zeroed.
        let ppn2 = m.map_fresh_page(10, 0x70001, true, true, false).unwrap();
        assert_eq!(m.phys().read_u32(ppn2 << PAGE_SHIFT), 0);
    }
}

#[cfg(test)]
mod dma_tests {
    use super::*;
    use indra_isa::assemble;

    fn booted() -> Machine {
        let mut m = Machine::new(MachineConfig::default());
        m.boot_asymmetric();
        m
    }

    fn loaded(m: &mut Machine) -> u32 {
        let img = assemble("t", "main:\n halt\n.data\nbuf: .space 256\n").unwrap();
        m.create_space(10);
        m.load_image(10, &img).unwrap();
        img.addr_of("buf").unwrap()
    }

    #[test]
    fn dma_roundtrip_charges_cycles() {
        let mut m = booted();
        let buf = loaded(&mut m);
        let payload = vec![0xAB; 200];
        let wc = m.dma_write_virtual(10, buf, &payload, None).unwrap();
        assert!(wc > 0, "DMA pays SDRAM time");
        let (back, rc) = m.dma_read_virtual(10, buf, 200, None).unwrap();
        assert_eq!(back, payload);
        assert!(rc > 0);
    }

    #[test]
    fn dma_crossing_lines_and_pages() {
        let mut m = booted();
        let buf = loaded(&mut m);
        // Unaligned start, crossing several 64B bursts.
        let payload: Vec<u8> = (0..130).map(|i| i as u8).collect();
        m.dma_write_virtual(10, buf + 3, &payload, None).unwrap();
        let (back, _) = m.dma_read_virtual(10, buf + 3, 130, None).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn unprivileged_dma_channel_is_watchdogged() {
        let mut m = booted();
        let buf = loaded(&mut m);
        // Remap the buffer's page onto RTS frame 0: a DMA channel owned by
        // the resurrectee (core 1) must be blocked; the kernel's own
        // channel is not.
        let vpn = buf >> PAGE_SHIFT;
        m.space_mut(10).unwrap().map(vpn, Pte { ppn: 0, read: true, write: true, execute: false });
        let err = m.dma_write_virtual(10, buf, b"x", Some(1));
        assert!(matches!(err, Err(Fault::Watchdog { .. })));
        assert!(m.dma_write_virtual(10, buf, b"x", None).is_ok());
    }

    #[test]
    fn dma_to_unmapped_faults() {
        let mut m = booted();
        m.create_space(10);
        assert!(matches!(
            m.dma_write_virtual(10, 0xDEAD_0000, b"x", None),
            Err(Fault::PageFault { .. })
        ));
        assert!(m.dma_read_virtual(10, 0xDEAD_0000, 4, None).is_err());
        assert!(m.dma_write_virtual(99, 0x1000, b"x", None).is_err(), "unknown asid");
    }

    // ---- superblock staleness audit, one test per write path -------------
    //
    // Each test gets a loop's superblock hot through the batch dispatch
    // path, rewrites the loop body through one machine-level write path,
    // reruns, and requires the *patched* semantics — a stale block (or
    // stale predecode entry) surviving any of these paths would produce
    // the old sum.

    use indra_isa::{AluOp, Cond, Instruction, Reg};

    const LOOP_BASE: u32 = 0x8000;
    const BODY: u32 = LOOP_BASE + 4;

    /// `a0 += step` fifty times, then halt. The loop body at [`BODY`] is
    /// the superblock under test; `step` is the patched immediate.
    fn loop_words(step: i32) -> Vec<u32> {
        vec![
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::ZERO, imm: 50 }
                .encode()
                .unwrap(),
            Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: step }
                .encode()
                .unwrap(),
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T0, rs1: Reg::T0, imm: -1 }
                .encode()
                .unwrap(),
            Instruction::Branch { cond: Cond::Ne, rs1: Reg::T0, rs2: Reg::ZERO, offset: -8 }
                .encode()
                .unwrap(),
            Instruction::Halt.encode().unwrap(),
        ]
    }

    /// Boots a machine with the `step = 1` loop on core 1 (monitoring off
    /// so the batch path engages without a monitor draining the FIFO).
    fn hot_loop_machine() -> Machine {
        let mut m = booted();
        m.set_monitoring(false);
        m.create_space(7);
        m.map_fresh_page(7, LOOP_BASE >> PAGE_SHIFT, true, true, true).unwrap();
        for (i, w) in loop_words(1).iter().enumerate() {
            assert!(m.write_virtual_u32(7, LOOP_BASE + 4 * i as u32, *w));
        }
        m.core_mut(1).set_asid(7);
        m.core_mut(1).set_pc(LOOP_BASE);
        m
    }

    fn run_to_halt_batched(m: &mut Machine) -> u32 {
        for _ in 0..10_000 {
            match m.step_core_batch_simple(1, u64::MAX).0 {
                CoreStep::Halted => return m.core(1).reg(Reg::A0),
                CoreStep::Executed => {}
                other => panic!("unexpected step outcome {other:?}"),
            }
        }
        panic!("loop did not halt");
    }

    fn rearm(m: &mut Machine) {
        m.core_mut(1).clear_halt();
        m.core_mut(1).set_reg(Reg::A0, 0);
        m.core_mut(1).set_pc(LOOP_BASE);
    }

    #[test]
    fn write_virtual_u32_invalidates_hot_superblocks() {
        let mut m = hot_loop_machine();
        assert_eq!(run_to_halt_batched(&mut m), 50);
        assert!(m.superblock_stats(1).hits > 0, "loop must actually run batched");
        assert!(m.write_virtual_u32(7, BODY, loop_words(2)[1]));
        rearm(&mut m);
        assert_eq!(run_to_halt_batched(&mut m), 100, "stale superblock served old code");
    }

    #[test]
    fn write_virtual_bytes_invalidates_hot_superblocks() {
        let mut m = hot_loop_machine();
        assert_eq!(run_to_halt_batched(&mut m), 50);
        assert!(m.superblock_stats(1).hits > 0, "loop must actually run batched");
        assert!(m.write_virtual_bytes(7, BODY, &loop_words(3)[1].to_le_bytes()));
        rearm(&mut m);
        assert_eq!(run_to_halt_batched(&mut m), 150, "stale superblock served old code");
    }

    #[test]
    fn dma_write_virtual_invalidates_hot_superblocks() {
        let mut m = hot_loop_machine();
        assert_eq!(run_to_halt_batched(&mut m), 50);
        assert!(m.superblock_stats(1).hits > 0, "loop must actually run batched");
        m.dma_write_virtual(7, BODY, &loop_words(4)[1].to_le_bytes(), None).unwrap();
        rearm(&mut m);
        assert_eq!(run_to_halt_batched(&mut m), 200, "stale superblock served old code");
    }

    #[test]
    fn committed_stores_invalidate_hot_superblocks() {
        // The in-pipeline path: the loop itself stores a patched immediate
        // over its own body (via a second, straight-line patcher program),
        // exercising the shared store-tracking call site from
        // `execute_decoded` rather than a machine-level writer.
        let mut m = hot_loop_machine();
        assert_eq!(run_to_halt_batched(&mut m), 50);
        assert!(m.superblock_stats(1).hits > 0, "loop must actually run batched");
        // Patcher at a fresh page: lw the patched word from a data slot,
        // sw it over the loop body, halt. (i16 offsets reach neither
        // address from zero, so t2 is built up to LOOP_BASE first.)
        let patch_base = 0x9000u32;
        m.map_fresh_page(7, patch_base >> PAGE_SHIFT, true, true, true).unwrap();
        let word = loop_words(5)[1];
        let data_addr = patch_base + 0x100;
        assert!(m.write_virtual_u32(7, data_addr, word));
        let patcher = [
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T2, rs1: Reg::ZERO, imm: 0x7FFF }
                .encode()
                .unwrap(),
            Instruction::AluImm { op: AluOp::Add, rd: Reg::T2, rs1: Reg::T2, imm: 1 }
                .encode()
                .unwrap(),
            Instruction::Load {
                width: indra_isa::Width::Word,
                signed: false,
                rd: Reg::T1,
                rs1: Reg::T2,
                offset: (data_addr - LOOP_BASE) as i32,
            }
            .encode()
            .unwrap(),
            Instruction::Store {
                width: indra_isa::Width::Word,
                rs2: Reg::T1,
                rs1: Reg::T2,
                offset: (BODY - LOOP_BASE) as i32,
            }
            .encode()
            .unwrap(),
            Instruction::Halt.encode().unwrap(),
        ];
        for (i, w) in patcher.iter().enumerate() {
            assert!(m.write_virtual_u32(7, patch_base + 4 * i as u32, *w));
        }
        m.core_mut(1).clear_halt();
        m.core_mut(1).set_pc(patch_base);
        for _ in 0..100 {
            if m.step_core_batch_simple(1, u64::MAX).0 == CoreStep::Halted {
                break;
            }
        }
        assert_eq!(m.read_virtual_u32(7, BODY), Some(word), "patcher must have landed");
        rearm(&mut m);
        assert_eq!(run_to_halt_batched(&mut m), 250, "stale superblock served old code");
    }
}
