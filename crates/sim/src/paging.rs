//! Per-process virtual address spaces.
//!
//! A flat VPN→PTE map plays the role of the page table. Page attributes
//! carry the execute permission that INDRA's code-origin inspection
//! verifies: the OS records each page's intended role when the binary is
//! loaded, and the monitor independently keeps its own copy — a PTE bit
//! can be tampered with from a compromised kernel, the monitor's copy
//! cannot (§3.2.2).

use std::cell::Cell;
use std::collections::HashMap;

use indra_mem::{PAGE_SHIFT, PAGE_SIZE};

use crate::{AccessKind, Fault};

/// Entries per access kind in the translation micro-cache (power of
/// two; direct-mapped on the low VPN bits).
const MICRO_TLB_ENTRIES: usize = 32;

/// One micro-cache slot: a known-good `vpn → ppn` translation for one
/// access kind. A slot is live only while its `gen` matches the
/// space's current generation, so any page-table mutation kills every
/// cached translation at once. The derived default (`gen` 0) never
/// matches: the space's generation starts at 1.
#[derive(Debug, Clone, Copy, Default)]
struct MicroEntry {
    vpn: u32,
    ppn: u32,
    gen: u64,
}

fn kind_index(kind: AccessKind) -> usize {
    match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::Execute => 2,
    }
}

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Physical page number.
    pub ppn: u32,
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub execute: bool,
}

impl Pte {
    fn allows(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read,
            AccessKind::Write => self.write,
            AccessKind::Execute => self.execute,
        }
    }
}

/// A virtual address space identified by an ASID.
///
/// Translation is a `HashMap` walk fronted by a small per-access-kind
/// direct-mapped micro-cache of known-good `vpn → ppn` pairs. The
/// micro-cache is purely a host-side fast path: entries are inserted
/// only after the full permission check passes, and every page-table
/// mutation ([`AddressSpace::map`], [`AddressSpace::unmap`],
/// [`AddressSpace::protect`]) bumps a generation counter that
/// invalidates all of them, so the observable translate/fault behavior
/// is identical with the cache on or off.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    asid: u16,
    pages: HashMap<u32, Pte>,
    /// Current translation generation; bumped by every mutation.
    gen: u64,
    /// Whether the micro-cache is consulted (host perf knob only).
    fast: bool,
    /// `[read, write, execute]` micro-caches. `Cell` because
    /// `translate` takes `&self` but wants to refill slots.
    micro: [[Cell<MicroEntry>; MICRO_TLB_ENTRIES]; 3],
}

impl AddressSpace {
    /// Creates an empty address space.
    #[must_use]
    pub fn new(asid: u16) -> AddressSpace {
        AddressSpace {
            asid,
            pages: HashMap::new(),
            gen: 1,
            fast: true,
            micro: std::array::from_fn(|_| {
                std::array::from_fn(|_| Cell::new(MicroEntry::default()))
            }),
        }
    }

    /// This space's ASID.
    #[must_use]
    pub fn asid(&self) -> u16 {
        self.asid
    }

    /// Current translation generation — bumped by every page-table
    /// mutation ([`AddressSpace::map`]/[`AddressSpace::unmap`]/
    /// [`AddressSpace::protect`]/[`AddressSpace::set_fast_paths`]).
    /// Host-side caches that pin translations (the superblock engine)
    /// record it and treat any change as wholesale invalidation.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Enables or disables the translation micro-cache (equivalence
    /// testing; simulated behavior is identical either way).
    pub fn set_fast_paths(&mut self, on: bool) {
        self.fast = on;
        self.gen += 1;
    }

    /// Maps virtual page `vpn` to `pte` (replacing any previous mapping).
    pub fn map(&mut self, vpn: u32, pte: Pte) {
        self.gen += 1;
        self.pages.insert(vpn, pte);
    }

    /// Removes the mapping for `vpn`, returning it if present.
    pub fn unmap(&mut self, vpn: u32) -> Option<Pte> {
        self.gen += 1;
        self.pages.remove(&vpn)
    }

    /// Looks up the PTE for `vpn`.
    #[must_use]
    pub fn pte(&self, vpn: u32) -> Option<Pte> {
        self.pages.get(&vpn).copied()
    }

    /// Changes the permissions of an existing mapping; returns `false` if
    /// the page is unmapped.
    pub fn protect(&mut self, vpn: u32, read: bool, write: bool, execute: bool) -> bool {
        self.gen += 1;
        match self.pages.get_mut(&vpn) {
            Some(pte) => {
                pte.read = read;
                pte.write = write;
                pte.execute = execute;
                true
            }
            None => false,
        }
    }

    /// Translates `vaddr` for an access of `kind`.
    ///
    /// # Errors
    ///
    /// [`Fault::PageFault`] when unmapped, [`Fault::Protection`] when the
    /// PTE forbids the access.
    pub fn translate(&self, vaddr: u32, kind: AccessKind) -> Result<u32, Fault> {
        let vpn = vaddr >> PAGE_SHIFT;
        if self.fast {
            let slot = &self.micro[kind_index(kind)][vpn as usize & (MICRO_TLB_ENTRIES - 1)];
            let e = slot.get();
            if e.gen == self.gen && e.vpn == vpn {
                return Ok((e.ppn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1)));
            }
        }
        let pte = self.pages.get(&vpn).ok_or(Fault::PageFault { vaddr, kind })?;
        if !pte.allows(kind) {
            return Err(Fault::Protection { vaddr, kind });
        }
        if self.fast {
            // Only known-good translations are cached, and only until
            // the next page-table mutation bumps `gen`.
            self.micro[kind_index(kind)][vpn as usize & (MICRO_TLB_ENTRIES - 1)].set(MicroEntry {
                vpn,
                ppn: pte.ppn,
                gen: self.gen,
            });
        }
        Ok((pte.ppn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1)))
    }

    /// Iterates over `(vpn, pte)` pairs (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (u32, Pte)> + '_ {
        self.pages.iter().map(|(&vpn, &pte)| (vpn, pte))
    }

    /// Number of mapped pages.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        let mut a = AddressSpace::new(3);
        a.map(0x400, Pte { ppn: 0x10, read: true, write: false, execute: true });
        a.map(0x401, Pte { ppn: 0x11, read: true, write: true, execute: false });
        a
    }

    #[test]
    fn translate_offsets() {
        let a = space();
        assert_eq!(a.translate(0x0040_0123, AccessKind::Read).unwrap(), 0x0001_0123);
        assert_eq!(a.translate(0x0040_1FFF, AccessKind::Write).unwrap(), 0x0001_1FFF);
    }

    #[test]
    fn unmapped_page_faults() {
        let a = space();
        assert!(matches!(a.translate(0x0050_0000, AccessKind::Read), Err(Fault::PageFault { .. })));
    }

    #[test]
    fn permissions_enforced() {
        let a = space();
        assert!(matches!(
            a.translate(0x0040_0000, AccessKind::Write),
            Err(Fault::Protection { .. })
        ));
        assert!(matches!(
            a.translate(0x0040_1000, AccessKind::Execute),
            Err(Fault::Protection { .. })
        ));
        assert!(a.translate(0x0040_0000, AccessKind::Execute).is_ok());
    }

    #[test]
    fn protect_flips_permissions() {
        let mut a = space();
        // The attack INDRA assumes possible: data page becomes executable.
        assert!(a.protect(0x401, true, true, true));
        assert!(a.translate(0x0040_1000, AccessKind::Execute).is_ok());
        assert!(!a.protect(0x999, true, true, true));
    }

    #[test]
    fn micro_cache_sees_protect_and_unmap() {
        let mut a = space();
        // Warm the execute micro-cache, then revoke the permission: the
        // cached translation must die with the generation bump.
        assert!(a.translate(0x0040_0000, AccessKind::Execute).is_ok());
        assert!(a.protect(0x400, true, false, false));
        assert!(matches!(
            a.translate(0x0040_0000, AccessKind::Execute),
            Err(Fault::Protection { .. })
        ));
        assert!(a.translate(0x0040_1000, AccessKind::Read).is_ok());
        a.unmap(0x401);
        assert!(matches!(a.translate(0x0040_1000, AccessKind::Read), Err(Fault::PageFault { .. })));
    }

    #[test]
    fn micro_cache_sees_remap() {
        let mut a = space();
        assert_eq!(a.translate(0x0040_0000, AccessKind::Read).unwrap(), 0x0001_0000);
        a.map(0x400, Pte { ppn: 0x20, read: true, write: false, execute: false });
        assert_eq!(a.translate(0x0040_0000, AccessKind::Read).unwrap(), 0x0002_0000);
    }

    #[test]
    fn fast_paths_off_is_equivalent() {
        let mut a = space();
        a.set_fast_paths(false);
        assert_eq!(a.translate(0x0040_0123, AccessKind::Read).unwrap(), 0x0001_0123);
        assert!(matches!(
            a.translate(0x0040_0000, AccessKind::Write),
            Err(Fault::Protection { .. })
        ));
    }

    #[test]
    fn unmap_removes() {
        let mut a = space();
        assert!(a.unmap(0x400).is_some());
        assert!(a.unmap(0x400).is_none());
        assert_eq!(a.mapped_pages(), 1);
    }
}
