//! Per-process virtual address spaces.
//!
//! A flat VPN→PTE map plays the role of the page table. Page attributes
//! carry the execute permission that INDRA's code-origin inspection
//! verifies: the OS records each page's intended role when the binary is
//! loaded, and the monitor independently keeps its own copy — a PTE bit
//! can be tampered with from a compromised kernel, the monitor's copy
//! cannot (§3.2.2).

use std::collections::HashMap;

use indra_mem::{PAGE_SHIFT, PAGE_SIZE};

use crate::{AccessKind, Fault};

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Physical page number.
    pub ppn: u32,
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub execute: bool,
}

impl Pte {
    fn allows(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read,
            AccessKind::Write => self.write,
            AccessKind::Execute => self.execute,
        }
    }
}

/// A virtual address space identified by an ASID.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    asid: u16,
    pages: HashMap<u32, Pte>,
}

impl AddressSpace {
    /// Creates an empty address space.
    #[must_use]
    pub fn new(asid: u16) -> AddressSpace {
        AddressSpace { asid, pages: HashMap::new() }
    }

    /// This space's ASID.
    #[must_use]
    pub fn asid(&self) -> u16 {
        self.asid
    }

    /// Maps virtual page `vpn` to `pte` (replacing any previous mapping).
    pub fn map(&mut self, vpn: u32, pte: Pte) {
        self.pages.insert(vpn, pte);
    }

    /// Removes the mapping for `vpn`, returning it if present.
    pub fn unmap(&mut self, vpn: u32) -> Option<Pte> {
        self.pages.remove(&vpn)
    }

    /// Looks up the PTE for `vpn`.
    #[must_use]
    pub fn pte(&self, vpn: u32) -> Option<Pte> {
        self.pages.get(&vpn).copied()
    }

    /// Changes the permissions of an existing mapping; returns `false` if
    /// the page is unmapped.
    pub fn protect(&mut self, vpn: u32, read: bool, write: bool, execute: bool) -> bool {
        match self.pages.get_mut(&vpn) {
            Some(pte) => {
                pte.read = read;
                pte.write = write;
                pte.execute = execute;
                true
            }
            None => false,
        }
    }

    /// Translates `vaddr` for an access of `kind`.
    ///
    /// # Errors
    ///
    /// [`Fault::PageFault`] when unmapped, [`Fault::Protection`] when the
    /// PTE forbids the access.
    pub fn translate(&self, vaddr: u32, kind: AccessKind) -> Result<u32, Fault> {
        let vpn = vaddr >> PAGE_SHIFT;
        let pte = self.pages.get(&vpn).ok_or(Fault::PageFault { vaddr, kind })?;
        if !pte.allows(kind) {
            return Err(Fault::Protection { vaddr, kind });
        }
        Ok((pte.ppn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1)))
    }

    /// Iterates over `(vpn, pte)` pairs (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (u32, Pte)> + '_ {
        self.pages.iter().map(|(&vpn, &pte)| (vpn, pte))
    }

    /// Number of mapped pages.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        let mut a = AddressSpace::new(3);
        a.map(0x400, Pte { ppn: 0x10, read: true, write: false, execute: true });
        a.map(0x401, Pte { ppn: 0x11, read: true, write: true, execute: false });
        a
    }

    #[test]
    fn translate_offsets() {
        let a = space();
        assert_eq!(a.translate(0x0040_0123, AccessKind::Read).unwrap(), 0x0001_0123);
        assert_eq!(a.translate(0x0040_1FFF, AccessKind::Write).unwrap(), 0x0001_1FFF);
    }

    #[test]
    fn unmapped_page_faults() {
        let a = space();
        assert!(matches!(a.translate(0x0050_0000, AccessKind::Read), Err(Fault::PageFault { .. })));
    }

    #[test]
    fn permissions_enforced() {
        let a = space();
        assert!(matches!(
            a.translate(0x0040_0000, AccessKind::Write),
            Err(Fault::Protection { .. })
        ));
        assert!(matches!(
            a.translate(0x0040_1000, AccessKind::Execute),
            Err(Fault::Protection { .. })
        ));
        assert!(a.translate(0x0040_0000, AccessKind::Execute).is_ok());
    }

    #[test]
    fn protect_flips_permissions() {
        let mut a = space();
        // The attack INDRA assumes possible: data page becomes executable.
        assert!(a.protect(0x401, true, true, true));
        assert!(a.translate(0x0040_1000, AccessKind::Execute).is_ok());
        assert!(!a.protect(0x999, true, true, true));
    }

    #[test]
    fn unmap_removes() {
        let mut a = space();
        assert!(a.unmap(0x400).is_some());
        assert!(a.unmap(0x400).is_none());
        assert_eq!(a.mapped_pages(), 1);
    }
}
