//! Predecoded-instruction cache (host-side fast path).
//!
//! Decoding an IR32 word is pure, so the simulator may memoize it — but
//! INDRA's whole threat model is *injected* code, so a stale decode is a
//! security hole: an attacker who overwrites an already-executed page
//! must see the new bytes decoded (and the resulting `CodeFill` events
//! reach the monitor) exactly as if no cache existed. Two layers make
//! that impossible to get wrong:
//!
//! 1. **Word self-validation.** Every entry stores the raw instruction
//!    word it was decoded from, and a lookup only hits when the word
//!    currently in physical memory matches it. The fetch path already
//!    reads the word each step, so the check is free — and it makes a
//!    stale decode unreachable through *any* write path (core stores,
//!    DMA, loaders, rollback engines writing physical memory directly).
//! 2. **Explicit invalidation.** Committed stores invalidate the slots
//!    their bytes touch, and [`PredecodeCache::flush`] clears everything
//!    on `quiesce_for_recovery` (which also invalidates the CAM) and on
//!    `restore_state` — matching the hardware rule that recovery and
//!    thaw leave no derived decode state behind.
//!
//! The cache is direct-mapped on word-aligned physical addresses. It
//! holds no simulated state: timing, stats and events are identical
//! with the cache disabled (`MachineConfig::fast_paths = false`).

use indra_isa::Instruction;

/// Slots in the predecode cache (power of two).
const PREDECODE_ENTRIES: usize = 4096;

#[derive(Debug, Clone, Copy)]
struct Slot {
    paddr: u32,
    word: u32,
    inst: Instruction,
    valid: bool,
}

impl Default for Slot {
    fn default() -> Slot {
        Slot { paddr: 0, word: 0, inst: Instruction::Nop, valid: false }
    }
}

/// Predecode-cache statistics (host-side observability; exported to the
/// fleet's per-shard host-performance report, never into simulated
/// stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredecodeStats {
    /// Lookups served from a validated slot.
    pub hits: u64,
    /// Lookups that decoded fresh (cold, conflicting or stale slot).
    pub misses: u64,
    /// Slots dropped by store-tracking invalidation.
    pub invalidations: u64,
}

impl std::ops::AddAssign for PredecodeStats {
    fn add_assign(&mut self, rhs: PredecodeStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.invalidations += rhs.invalidations;
    }
}

/// A per-core direct-mapped cache of decoded instructions, tagged by
/// physical address and self-validated against the current word.
#[derive(Debug)]
pub struct PredecodeCache {
    slots: Vec<Slot>,
    stats: PredecodeStats,
    enabled: bool,
}

impl PredecodeCache {
    /// Creates an empty cache; a disabled cache never hits and never
    /// stores (the `fast_paths = false` reference behavior).
    #[must_use]
    pub fn new(enabled: bool) -> PredecodeCache {
        PredecodeCache {
            slots: vec![Slot::default(); PREDECODE_ENTRIES],
            stats: PredecodeStats::default(),
            enabled,
        }
    }

    fn index(paddr: u32) -> usize {
        (paddr as usize >> 2) & (PREDECODE_ENTRIES - 1)
    }

    /// Returns the cached decode for `paddr` if (and only if) the slot
    /// was filled from exactly `word`, the word read from physical
    /// memory *this* fetch.
    #[must_use]
    pub fn lookup(&mut self, paddr: u32, word: u32) -> Option<Instruction> {
        if !self.enabled {
            return None;
        }
        let s = &self.slots[PredecodeCache::index(paddr)];
        if s.valid && s.paddr == paddr && s.word == word {
            self.stats.hits += 1;
            Some(s.inst)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Records a successful decode of `word` at `paddr`.
    pub fn insert(&mut self, paddr: u32, word: u32, inst: Instruction) {
        if !self.enabled {
            return;
        }
        self.slots[PredecodeCache::index(paddr)] = Slot { paddr, word, inst, valid: true };
    }

    /// Invalidates every slot whose 4-byte word overlaps the written
    /// range `[paddr, paddr + len)` — the store-hits-a-cached-line rule.
    pub fn invalidate_range(&mut self, paddr: u32, len: u32) {
        if !self.enabled || len == 0 {
            return;
        }
        // A word starting up to 3 bytes before the write still overlaps.
        let first = paddr.saturating_sub(3);
        let last = paddr.saturating_add(len - 1);
        let mut addr = first;
        loop {
            let s = &mut self.slots[PredecodeCache::index(addr)];
            if s.valid && s.paddr >= first && s.paddr <= last {
                s.valid = false;
                self.stats.invalidations += 1;
            }
            if addr == last {
                break;
            }
            addr += 1;
        }
    }

    /// Drops everything (recovery quiesce, CAM invalidation, state
    /// restore).
    pub fn flush(&mut self) {
        self.slots.fill(Slot::default());
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> PredecodeStats {
        self.stats
    }

    /// Whether the cache is participating in fetches.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nop() -> Instruction {
        Instruction::Nop
    }

    #[test]
    fn hit_requires_matching_word() {
        let mut c = PredecodeCache::new(true);
        c.insert(0x1000, 0xAAAA, nop());
        assert_eq!(c.lookup(0x1000, 0xAAAA), Some(nop()));
        assert_eq!(c.lookup(0x1000, 0xBBBB), None, "changed bytes must miss");
        assert_eq!(c.lookup(0x2000, 0xAAAA), None, "different paddr must miss");
    }

    #[test]
    fn store_invalidates_overlapping_words() {
        let mut c = PredecodeCache::new(true);
        c.insert(0x1000, 1, nop());
        c.insert(0x1004, 2, nop());
        c.insert(0x1008, 3, nop());
        // A 1-byte store into 0x1006 overlaps the word at 0x1004 only.
        c.invalidate_range(0x1006, 1);
        assert_eq!(c.lookup(0x1000, 1), Some(nop()));
        assert_eq!(c.lookup(0x1004, 2), None);
        assert_eq!(c.lookup(0x1008, 3), Some(nop()));
        // A word store at 0x1006 also clips the word at 0x1008.
        c.insert(0x1004, 2, nop());
        c.invalidate_range(0x1006, 4);
        assert_eq!(c.lookup(0x1004, 2), None);
        assert_eq!(c.lookup(0x1008, 3), None);
        assert_eq!(c.lookup(0x1000, 1), Some(nop()));
    }

    #[test]
    fn flush_and_disabled_behavior() {
        let mut c = PredecodeCache::new(true);
        c.insert(0x40, 7, nop());
        c.flush();
        assert_eq!(c.lookup(0x40, 7), None);

        let mut off = PredecodeCache::new(false);
        off.insert(0x40, 7, nop());
        assert_eq!(off.lookup(0x40, 7), None, "disabled cache never hits");
        assert!(!off.is_enabled());
    }
}
