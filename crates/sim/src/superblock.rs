//! Superblock execution engine (host-side fast path).
//!
//! Instead of dispatching one instruction at a time — translate, watchdog
//! check, physical read, predecode lookup, execute — the simulator batches
//! hot basic blocks into *superblocks*: straight-line runs of pre-decoded
//! instructions whose fetch-side checks were proven once, at translation
//! time, and hoisted out of the per-instruction loop. A superblock entry
//! that gets hot (a heat counter on the dispatch path crosses
//! [`HOT_THRESHOLD`]) is decoded into a pinned micro-op array and executed
//! by [`crate::Core::run_block`] with batched cycle-, cache- and
//! event-accounting; the interpreter resumes at block exits, faults,
//! traps, trace events and FIFO-monitor pressure.
//!
//! Block boundaries are exactly the analyzer's: translation stops at (and
//! includes) the first instruction for which [`indra_analyze::ends_block`]
//! holds — the same rule `indra_analyze::Cfg::build` applies statically —
//! so dynamic traces coincide with the static blocks the CFI machinery
//! reasons about.
//!
//! Like the predecode cache, a superblock holds **no simulated state**:
//! cycle counts, cache/TLB statistics, watchdog statistics, trace events,
//! faults and snapshots are byte-identical with the engine off
//! (`MachineConfig::superblocks = false`). INDRA's threat model is
//! *injected* code, so a stale block is a security hole; four pins make
//! one unreachable:
//!
//! 1. **Address-space generation** — any page-table mutation (map, unmap,
//!    protect) voids every translation the block baked in.
//! 2. **Watchdog generation** — any policy edit voids the hoisted
//!    per-fetch range checks.
//! 3. **Physical-memory generation + code epoch** — every physical write
//!    bumps its frame's epoch at the single `frame_mut` chokepoint, so
//!    the pinned [`indra_mem::PhysicalMemory::range_epoch`] sum catches
//!    *any* write path into the block's bytes: committed stores, DMA,
//!    loaders, rollback engines. This is the superblock analogue of the
//!    predecode cache's word self-validation, and it also covers writes
//!    from *other* cores, whose caches the store path cannot reach.
//! 4. **ASID + entry address** — context switches and conflicting entries
//!    simply miss.
//!
//! Explicit invalidation piggybacks on the predecode cache's
//! store-tracking: [`invalidate_written_code`] is the one call site both
//! caches share, used by the committed-store path and by every
//! machine-level write path (`write_virtual_*`, `dma_write_virtual`), and
//! [`SuperblockCache::flush`] rides `quiesce_for_recovery`,
//! `restore_state` and `create_space` exactly like the predecode flush.
//! A store that lands *inside the currently running block* exits the
//! block (`BlockExit::SelfModified`); the rewritten bytes re-translate on
//! the next entry and still raise `CodeFill` origin checks on their IL1
//! fill, so injected code cannot dodge detection by hiding in a trace.

use indra_analyze::ends_block;
use indra_isa::Instruction;
use indra_mem::{PhysicalMemory, PAGE_SHIFT};

use crate::{AccessKind, AddressSpace, MemoryWatchdog, PredecodeCache};

/// Maximum instructions in one superblock.
const MAX_BLOCK_INSNS: usize = 64;
/// Direct-mapped block slots per core (power of two). Sized so the hot
/// working set of a service (every basic-block entry) rarely conflicts:
/// consecutive entries map to consecutive slots, so this is effectively
/// a code-footprint budget in instructions.
const BLOCK_SLOTS: usize = 4096;
/// Direct-mapped entry-heat counters per core (power of two).
const HEAT_SLOTS: usize = 4096;
/// Dispatches through one entry before the translator runs.
const HOT_THRESHOLD: u32 = 16;

/// A translated basic block: straight-line pre-decoded instructions with
/// every fetch-side check proven under the pinned generations.
#[derive(Debug)]
pub struct Superblock {
    pub(crate) entry_vaddr: u32,
    pub(crate) entry_paddr: u32,
    pub(crate) asid: u16,
    pub(crate) insts: Box<[Instruction]>,
    space_gen: u64,
    watchdog_gen: u64,
    phys_gen: u64,
    code_epoch: u64,
}

impl Superblock {
    /// The block's byte length (4 bytes per instruction).
    #[must_use]
    pub fn len_bytes(&self) -> u32 {
        4 * self.insts.len() as u32
    }

    /// Whether every pinned precondition still holds, so the block may
    /// execute without re-running its per-instruction fetch checks.
    fn valid(
        &self,
        vaddr: u32,
        asid: u16,
        space_gen: u64,
        watchdog_gen: u64,
        phys: &PhysicalMemory,
    ) -> bool {
        self.entry_vaddr == vaddr
            && self.asid == asid
            && self.space_gen == space_gen
            && self.watchdog_gen == watchdog_gen
            && self.phys_gen == phys.generation()
            && self.code_epoch == phys.range_epoch(self.entry_paddr, self.len_bytes())
    }
}

/// Decodes the basic block starting at `pc`, proving each fetch legal
/// under the current translations and watchdog policy. Mutates **no**
/// simulated state: translation is a read-only scan (the address-space
/// micro-cache refills it may cause are host-side).
///
/// The block ends at the first [`ends_block`] terminator (included), at
/// the page boundary (so `entry_paddr + 4i` stays the true translation of
/// every slot), at the first undecodable word or watchdog-refused fetch
/// (excluded — the interpreter reproduces the fault), or at
/// [`MAX_BLOCK_INSNS`].
pub(crate) fn translate(
    space: &AddressSpace,
    watchdog: &MemoryWatchdog,
    phys: &PhysicalMemory,
    core_id: usize,
    pc: u32,
) -> Option<Superblock> {
    let entry_paddr = space.translate(pc, AccessKind::Execute).ok()?;
    let page = pc >> PAGE_SHIFT;
    let mut insts = Vec::new();
    for i in 0..MAX_BLOCK_INSNS as u32 {
        let vaddr = pc.wrapping_add(4 * i);
        if vaddr >> PAGE_SHIFT != page || vaddr.wrapping_add(3) >> PAGE_SHIFT != page {
            break;
        }
        let paddr = entry_paddr + 4 * i;
        if !watchdog.peek(core_id, paddr, AccessKind::Execute) {
            break;
        }
        let Ok(inst) = Instruction::decode(phys.read_u32(paddr)) else { break };
        insts.push(inst);
        if ends_block(inst) {
            break;
        }
    }
    if insts.is_empty() {
        return None;
    }
    let len_bytes = 4 * insts.len() as u32;
    Some(Superblock {
        entry_vaddr: pc,
        entry_paddr,
        asid: space.asid(),
        insts: insts.into_boxed_slice(),
        space_gen: space.generation(),
        watchdog_gen: watchdog.generation(),
        phys_gen: phys.generation(),
        code_epoch: phys.range_epoch(entry_paddr, len_bytes),
    })
}

/// Superblock-engine statistics (host-side observability; exported to the
/// fleet's per-shard host-performance report, never into simulated stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperblockStats {
    /// Blocks translated.
    pub translations: u64,
    /// Dispatches served by a valid block.
    pub hits: u64,
    /// Instructions retired inside blocks.
    pub block_insns: u64,
    /// Dispatches that found a block with stale pins (fallback reason:
    /// page table, watchdog policy or code bytes changed underneath it).
    pub stale: u64,
    /// Blocks dropped by explicit store-tracking invalidation or flush.
    pub invalidations: u64,
    /// Block runs that stopped early to hand a trace event to the
    /// monitor path (fallback reason: event ordering).
    pub exit_events: u64,
    /// Block runs that stopped because a store landed inside the running
    /// block (fallback reason: self-modifying code).
    pub exit_self_modified: u64,
    /// Block runs that ended at a syscall or halt (fallback reason:
    /// trap — the system layer takes over).
    pub exit_traps: u64,
    /// Block runs that ended at an architectural fault (fallback reason:
    /// the interpreter's fault path takes over).
    pub exit_faults: u64,
}

impl std::ops::AddAssign for SuperblockStats {
    fn add_assign(&mut self, rhs: SuperblockStats) {
        self.translations += rhs.translations;
        self.hits += rhs.hits;
        self.block_insns += rhs.block_insns;
        self.stale += rhs.stale;
        self.invalidations += rhs.invalidations;
        self.exit_events += rhs.exit_events;
        self.exit_self_modified += rhs.exit_self_modified;
        self.exit_traps += rhs.exit_traps;
        self.exit_faults += rhs.exit_faults;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Heat {
    vaddr: u32,
    asid: u16,
    count: u32,
}

/// What the dispatcher should do at this entry.
#[derive(Debug)]
pub(crate) enum Enter {
    /// A valid block — taken out of the cache for execution; give it back
    /// with [`SuperblockCache::restore`].
    Run(Box<Superblock>),
    /// The entry just crossed the heat threshold: translate it.
    Translate,
    /// Interpret one instruction.
    Interpret,
}

/// A per-core cache of translated superblocks keyed by entry address,
/// with a heat table deciding when translation pays for itself.
#[derive(Debug)]
pub struct SuperblockCache {
    slots: Vec<Option<Box<Superblock>>>,
    heat: Vec<Heat>,
    stats: SuperblockStats,
    enabled: bool,
    live: u32,
    /// Conservative physical span `[span_lo, span_hi)` of every block
    /// inserted since the last flush — lets the committed-store path
    /// reject non-code writes with two compares instead of a slot scan.
    span_lo: u32,
    span_hi: u32,
}

impl SuperblockCache {
    /// Creates an empty cache; a disabled cache never translates and
    /// every dispatch interprets (the `superblocks = false` reference
    /// behavior).
    #[must_use]
    pub fn new(enabled: bool) -> SuperblockCache {
        SuperblockCache {
            slots: (0..BLOCK_SLOTS).map(|_| None).collect(),
            heat: vec![Heat::default(); HEAT_SLOTS],
            stats: SuperblockStats::default(),
            enabled,
            live: 0,
            span_lo: 0,
            span_hi: 0,
        }
    }

    fn slot_index(vaddr: u32) -> usize {
        (vaddr as usize >> 2) & (BLOCK_SLOTS - 1)
    }

    fn heat_index(vaddr: u32) -> usize {
        (vaddr as usize >> 2) & (HEAT_SLOTS - 1)
    }

    /// Dispatch decision for the entry `(vaddr, asid)` under the current
    /// generations: run a valid block, translate a hot entry, or
    /// interpret.
    pub(crate) fn enter(
        &mut self,
        vaddr: u32,
        asid: u16,
        space_gen: u64,
        watchdog_gen: u64,
        phys: &PhysicalMemory,
    ) -> Enter {
        if !self.enabled {
            return Enter::Interpret;
        }
        let idx = SuperblockCache::slot_index(vaddr);
        if let Some(b) = &self.slots[idx] {
            if b.valid(vaddr, asid, space_gen, watchdog_gen, phys) {
                self.stats.hits += 1;
                // The block is checked out for the run; `live` tracks
                // cached blocks only (restore() re-increments).
                self.live -= 1;
                return Enter::Run(self.slots[idx].take().expect("checked above"));
            }
            if b.entry_vaddr == vaddr && b.asid == asid {
                // Same entry, stale pins: evict; the heat path below
                // re-translates once the entry proves hot again.
                self.stats.stale += 1;
                self.slots[idx] = None;
                self.live -= 1;
            }
        }
        let h = &mut self.heat[SuperblockCache::heat_index(vaddr)];
        if h.vaddr == vaddr && h.asid == asid {
            h.count += 1;
            if h.count >= HOT_THRESHOLD {
                h.count = 0;
                return Enter::Translate;
            }
        } else {
            *h = Heat { vaddr, asid, count: 1 };
        }
        Enter::Interpret
    }

    /// Inserts a freshly translated block.
    pub(crate) fn insert(&mut self, block: Box<Superblock>) {
        self.stats.translations += 1;
        self.restore(block);
    }

    /// Returns a block taken out by [`Enter::Run`] (or inserts a fresh
    /// one). A block whose pins went stale during its own run is caught
    /// by validation on the next dispatch.
    pub(crate) fn restore(&mut self, block: Box<Superblock>) {
        if !self.enabled {
            return;
        }
        let end = block.entry_paddr + block.len_bytes();
        if self.live == 0 && self.span_lo == self.span_hi {
            self.span_lo = block.entry_paddr;
            self.span_hi = end;
        } else {
            self.span_lo = self.span_lo.min(block.entry_paddr);
            self.span_hi = self.span_hi.max(end);
        }
        let idx = SuperblockCache::slot_index(block.entry_vaddr);
        if self.slots[idx].is_none() {
            self.live += 1;
        }
        self.slots[idx] = Some(block);
    }

    /// Accounts one finished block run: `n` instructions executed in
    /// block mode, ended by `exit`.
    pub(crate) fn note_block(&mut self, n: u64, exit: &crate::cpu::BlockExit) {
        use crate::cpu::BlockExit;
        self.stats.block_insns += n;
        match exit {
            BlockExit::End | BlockExit::Budget => {}
            BlockExit::Events => self.stats.exit_events += 1,
            BlockExit::SelfModified => self.stats.exit_self_modified += 1,
            BlockExit::Syscall { .. } | BlockExit::Halted => self.stats.exit_traps += 1,
            BlockExit::Fault(_) => self.stats.exit_faults += 1,
        }
    }

    /// Drops every block overlapping the written physical range
    /// `[paddr, paddr + len)` — the store-tracking rule shared with
    /// [`PredecodeCache::invalidate_range`]. The conservative span check
    /// makes the common data-store case two compares.
    pub fn invalidate_range(&mut self, paddr: u32, len: u32) {
        if !self.enabled || len == 0 || self.live == 0 {
            return;
        }
        let lo = u64::from(paddr);
        let hi = lo + u64::from(len);
        if hi <= u64::from(self.span_lo) || lo >= u64::from(self.span_hi) {
            return;
        }
        for slot in &mut self.slots {
            if let Some(b) = slot {
                let b_lo = u64::from(b.entry_paddr);
                if lo < b_lo + u64::from(b.len_bytes()) && hi > b_lo {
                    *slot = None;
                    self.live -= 1;
                    self.stats.invalidations += 1;
                }
            }
        }
    }

    /// Drops everything — blocks and heat (recovery quiesce, state
    /// restore, address-space creation; ASID reuse restarts space
    /// generations, so wholesale invalidation is the only safe answer).
    pub fn flush(&mut self) {
        self.stats.invalidations += u64::from(self.live);
        for s in &mut self.slots {
            *s = None;
        }
        self.heat.fill(Heat::default());
        self.live = 0;
        self.span_lo = 0;
        self.span_hi = 0;
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> SuperblockStats {
        self.stats
    }

    /// Whether the engine participates in dispatch.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// The one store-tracking call site shared by every write path: both
/// derived-code caches drop entries overlapping the written bytes.
/// (Blocks held by *other* cores are unreachable from a store — their
/// staleness is caught by the code-epoch pin at their next dispatch.)
pub(crate) fn invalidate_written_code(
    predecode: &mut PredecodeCache,
    superblocks: &mut SuperblockCache,
    paddr: u32,
    len: u32,
) {
    predecode.invalidate_range(paddr, len);
    superblocks.invalidate_range(paddr, len);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pte;

    fn rig() -> (AddressSpace, MemoryWatchdog, PhysicalMemory) {
        let mut space = AddressSpace::new(3);
        space.map(1, Pte { ppn: 1, read: true, write: true, execute: true });
        space.map(2, Pte { ppn: 2, read: true, write: true, execute: true });
        let mut watchdog = MemoryWatchdog::new(1);
        watchdog.set_privileged(0, true);
        let mut phys = PhysicalMemory::new();
        // 6 ALU ops then a halt at 0x1000; pure straight line at 0x2000.
        for i in 0..6 {
            phys.write_u32(0x1000 + 4 * i, Instruction::Nop.encode().unwrap());
        }
        phys.write_u32(0x1018, Instruction::Halt.encode().unwrap());
        (space, watchdog, phys)
    }

    #[test]
    fn translation_stops_at_terminator_and_pins_generations() {
        let (space, watchdog, phys) = rig();
        let b = translate(&space, &watchdog, &phys, 0, 0x1000).unwrap();
        assert_eq!(b.insts.len(), 7, "six nops + the halt terminator");
        assert_eq!(b.entry_paddr, 0x1000);
        assert!(b.valid(0x1000, 3, space.generation(), watchdog.generation(), &phys));
        assert!(!b.valid(0x1000, 4, space.generation(), watchdog.generation(), &phys));
    }

    #[test]
    fn every_pin_voids_the_block() {
        let (mut space, mut watchdog, mut phys) = rig();
        let b = translate(&space, &watchdog, &phys, 0, 0x1000).unwrap();
        let (sg, wg) = (space.generation(), watchdog.generation());
        assert!(b.valid(0x1000, 3, sg, wg, &phys));
        // Code write → epoch mismatch.
        phys.write_u32(0x1004, Instruction::Halt.encode().unwrap());
        assert!(!b.valid(0x1000, 3, sg, wg, &phys), "code write must void the block");
        // Page-table and watchdog edits → generation mismatch.
        space.protect(1, true, false, true);
        assert!(!b.valid(0x1000, 3, space.generation(), wg, &phys));
        watchdog.set_privileged(0, false);
        assert!(!b.valid(0x1000, 3, sg, watchdog.generation(), &phys));
    }

    #[test]
    fn translation_respects_watchdog_and_page_bounds() {
        let (space, mut watchdog, phys) = rig();
        watchdog.set_privileged(0, false);
        watchdog.allow(0, crate::PhysRange::try_new(0x1000, 0x1010).unwrap());
        let b = translate(&space, &watchdog, &phys, 0, 0x1000).unwrap();
        assert_eq!(b.insts.len(), 4, "fetches past the allowed range are excluded");
        // A block starting near the page end must not cross into it.
        let mut phys2 = PhysicalMemory::new();
        for i in 0..8 {
            phys2.write_u32(0x1FF0 + 4 * i, Instruction::Nop.encode().unwrap());
        }
        watchdog.set_privileged(0, true);
        let b2 = translate(&space, &watchdog, &phys2, 0, 0x1FF0).unwrap();
        assert_eq!(b2.insts.len(), 4, "block ends at the page boundary");
    }

    #[test]
    fn cache_heats_translates_and_invalidates() {
        let (space, watchdog, phys) = rig();
        let mut cache = SuperblockCache::new(true);
        let (sg, wg) = (space.generation(), watchdog.generation());
        for _ in 0..HOT_THRESHOLD - 1 {
            assert!(matches!(cache.enter(0x1000, 3, sg, wg, &phys), Enter::Interpret));
        }
        assert!(matches!(cache.enter(0x1000, 3, sg, wg, &phys), Enter::Translate));
        let b = translate(&space, &watchdog, &phys, 0, 0x1000).unwrap();
        cache.insert(Box::new(b));
        assert_eq!(cache.stats().translations, 1);
        let Enter::Run(b) = cache.enter(0x1000, 3, sg, wg, &phys) else {
            panic!("hot entry must run");
        };
        cache.restore(b);
        assert_eq!(cache.stats().hits, 1);
        // A write outside the code span is rejected by the span check;
        // a write into the block drops it.
        cache.invalidate_range(0x8000, 4);
        assert_eq!(cache.stats().invalidations, 0);
        cache.invalidate_range(0x1008, 1);
        assert_eq!(cache.stats().invalidations, 1);
        assert!(matches!(cache.enter(0x1000, 3, sg, wg, &phys), Enter::Interpret));
    }

    #[test]
    fn stale_pins_evict_on_dispatch() {
        let (space, watchdog, mut phys) = rig();
        let mut cache = SuperblockCache::new(true);
        let (sg, wg) = (space.generation(), watchdog.generation());
        cache.insert(Box::new(translate(&space, &watchdog, &phys, 0, 0x1000).unwrap()));
        phys.write_u32(0x1000, Instruction::Halt.encode().unwrap());
        assert!(matches!(cache.enter(0x1000, 3, sg, wg, &phys), Enter::Interpret));
        assert_eq!(cache.stats().stale, 1);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn disabled_cache_always_interprets() {
        let (space, watchdog, phys) = rig();
        let mut cache = SuperblockCache::new(false);
        let (sg, wg) = (space.generation(), watchdog.generation());
        for _ in 0..10 * HOT_THRESHOLD {
            assert!(matches!(cache.enter(0x1000, 3, sg, wg, &phys), Enter::Interpret));
        }
        assert!(!cache.is_enabled());
    }
}
