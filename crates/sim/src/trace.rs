//! Trace events streamed from resurrectee hardware to the resurrector.
//!
//! The paper's trace unit sits at the commit stage and at the L2→IL1
//! interface; it needs no pipeline-internal changes (§2.3.2). Each event
//! carries the issuing core's cycle stamp (for the concurrency model) and
//! the process tag — the paper tags trace entries with the CR3 value so
//! the monitor can select the right per-application metadata; we use the
//! ASID, which is the same identifying role.

/// One hardware trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A direct function call committed.
    Call {
        /// PC of the call instruction.
        pc: u32,
        /// Call target.
        target: u32,
        /// The address execution must return to (`pc + 4`).
        return_addr: u32,
        /// Stack pointer at the call (the paper traces it to pair
        /// call/return across deep recursion).
        sp: u32,
    },
    /// An indirect function call committed (through a register —
    /// function-pointer tables, virtual dispatch).
    IndirectCall {
        /// PC of the call.
        pc: u32,
        /// Computed target.
        target: u32,
        /// `pc + 4`.
        return_addr: u32,
        /// Stack pointer at the call.
        sp: u32,
    },
    /// A function return committed.
    Return {
        /// PC of the return instruction.
        pc: u32,
        /// Where it actually returned to.
        target: u32,
        /// Stack pointer at the return.
        sp: u32,
    },
    /// A computed jump (not call/return) committed.
    IndirectJump {
        /// PC of the jump.
        pc: u32,
        /// Computed target.
        target: u32,
    },
    /// A line entered the IL1 from a code page that missed the CAM filter:
    /// the monitor must verify the page's recorded execute attribute.
    CodeFill {
        /// Virtual address of the *page* containing the fetched line.
        page_vaddr: u32,
        /// The faulting-or-fetched PC (diagnostics).
        pc: u32,
    },
    /// The core reached a system call and is synchronizing (§3.2.5: all
    /// previous instructions must be verified before the kernel runs).
    SyscallSync {
        /// PC of the syscall.
        pc: u32,
        /// Syscall code.
        code: u16,
    },
}

/// A stamped, tagged event as it sits in the FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StampedEvent {
    /// The event.
    pub event: TraceEvent,
    /// Resurrectee cycle when the event was produced.
    pub cycle: u64,
    /// Address-space (process) tag — the paper's CR3 analogue.
    pub asid: u16,
}

impl TraceEvent {
    /// Whether this event forces synchronization (resurrectee stalls until
    /// the monitor has verified everything up to and including it).
    #[must_use]
    pub fn is_sync_point(&self) -> bool {
        matches!(self, TraceEvent::SyscallSync { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_classification() {
        assert!(TraceEvent::SyscallSync { pc: 0, code: 1 }.is_sync_point());
        assert!(!TraceEvent::Call { pc: 0, target: 4, return_addr: 4, sp: 0 }.is_sync_point());
    }
}
