//! Trace events streamed from resurrectee hardware to the resurrector.
//!
//! The paper's trace unit sits at the commit stage and at the L2→IL1
//! interface; it needs no pipeline-internal changes (§2.3.2). Each event
//! carries the issuing core's cycle stamp (for the concurrency model) and
//! the process tag — the paper tags trace entries with the CR3 value so
//! the monitor can select the right per-application metadata; we use the
//! ASID, which is the same identifying role.

/// One hardware trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A direct function call committed.
    Call {
        /// PC of the call instruction.
        pc: u32,
        /// Call target.
        target: u32,
        /// The address execution must return to (`pc + 4`).
        return_addr: u32,
        /// Stack pointer at the call (the paper traces it to pair
        /// call/return across deep recursion).
        sp: u32,
    },
    /// An indirect function call committed (through a register —
    /// function-pointer tables, virtual dispatch).
    IndirectCall {
        /// PC of the call.
        pc: u32,
        /// Computed target.
        target: u32,
        /// `pc + 4`.
        return_addr: u32,
        /// Stack pointer at the call.
        sp: u32,
    },
    /// A function return committed.
    Return {
        /// PC of the return instruction.
        pc: u32,
        /// Where it actually returned to.
        target: u32,
        /// Stack pointer at the return.
        sp: u32,
    },
    /// A computed jump (not call/return) committed.
    IndirectJump {
        /// PC of the jump.
        pc: u32,
        /// Computed target.
        target: u32,
    },
    /// A line entered the IL1 from a code page that missed the CAM filter:
    /// the monitor must verify the page's recorded execute attribute.
    CodeFill {
        /// Virtual address of the *page* containing the fetched line.
        page_vaddr: u32,
        /// The faulting-or-fetched PC (diagnostics).
        pc: u32,
    },
    /// The core reached a system call and is synchronizing (§3.2.5: all
    /// previous instructions must be verified before the kernel runs).
    SyscallSync {
        /// PC of the syscall.
        pc: u32,
        /// Syscall code.
        code: u16,
    },
}

/// A fixed two-slot inline event buffer.
///
/// One instruction emits at most two trace events (a code fill plus a
/// control/sync event — the machine reserves exactly two FIFO slots
/// before stepping), so per-step event collection needs no heap
/// allocation at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventBuf {
    slots: [Option<TraceEvent>; 2],
}

impl EventBuf {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> EventBuf {
        EventBuf::default()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics when a third event is pushed — an instruction emitting
    /// more than two events would overflow the FIFO reservation.
    pub fn push(&mut self, event: TraceEvent) {
        if self.slots[0].is_none() {
            self.slots[0] = Some(event);
        } else if self.slots[1].is_none() {
            self.slots[1] = Some(event);
        } else {
            panic!("an instruction emits at most two trace events");
        }
    }

    /// Iterates over the events in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// The most recently pushed event.
    #[must_use]
    pub fn last(&self) -> Option<&TraceEvent> {
        self.slots[1].as_ref().or(self.slots[0].as_ref())
    }

    /// Number of events held (0–2).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no events were emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots[0].is_none()
    }
}

/// A stamped, tagged event as it sits in the FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StampedEvent {
    /// The event.
    pub event: TraceEvent,
    /// Resurrectee cycle when the event was produced.
    pub cycle: u64,
    /// Address-space (process) tag — the paper's CR3 analogue.
    pub asid: u16,
}

impl TraceEvent {
    /// Whether this event forces synchronization (resurrectee stalls until
    /// the monitor has verified everything up to and including it).
    #[must_use]
    pub fn is_sync_point(&self) -> bool {
        matches!(self, TraceEvent::SyscallSync { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_buf_holds_two() {
        let mut b = EventBuf::new();
        assert!(b.is_empty());
        b.push(TraceEvent::IndirectJump { pc: 0, target: 4 });
        b.push(TraceEvent::Return { pc: 4, target: 8, sp: 0 });
        assert_eq!(b.len(), 2);
        assert!(matches!(b.last(), Some(TraceEvent::Return { .. })));
        assert_eq!(b.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn event_buf_rejects_third() {
        let mut b = EventBuf::new();
        for _ in 0..3 {
            b.push(TraceEvent::IndirectJump { pc: 0, target: 4 });
        }
    }

    #[test]
    fn sync_classification() {
        assert!(TraceEvent::SyscallSync { pc: 0, code: 1 }.is_sync_point());
        assert!(!TraceEvent::Call { pc: 0, target: 4, return_addr: 4, sp: 0 }.is_sync_point());
    }
}
