//! The INDRA hardware memory watchdog (§3.1.1).
//!
//! Every memory access is tagged with the issuing core's id; a simple
//! hardware range check guarantees that resurrectee cores can only touch
//! the physical memory the resurrector assigned to them. The resurrector
//! itself bypasses the check (it "can read and write the entire address
//! space"). This is the insulation that makes the monitor unreachable
//! from a compromised service: backup pages, the monitor's own state and
//! the runtime system live outside every resurrectee's ranges.

use crate::{AccessKind, Fault};

/// A half-open physical range `[base, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysRange {
    /// First byte.
    pub base: u32,
    /// One past the last byte.
    pub end: u32,
}

/// The error of constructing an empty [`PhysRange`].
///
/// Construction is fallible rather than panicking so that supervised
/// code (a fleet shard under `catch_unwind`) can never turn a
/// configuration mistake into something indistinguishable from a
/// chaos-injected crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyPhysRange {
    /// The offending base.
    pub base: u32,
    /// The offending end.
    pub end: u32,
}

impl std::fmt::Display for EmptyPhysRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "empty physical range [{:#x}, {:#x})", self.base, self.end)
    }
}

impl std::error::Error for EmptyPhysRange {}

impl PhysRange {
    /// Creates a half-open range `[base, end)`.
    ///
    /// # Errors
    ///
    /// [`EmptyPhysRange`] when `base >= end` — an empty range can never
    /// authorize an access, so asking for one is always a caller bug.
    pub fn try_new(base: u32, end: u32) -> Result<PhysRange, EmptyPhysRange> {
        if base < end {
            Ok(PhysRange { base, end })
        } else {
            Err(EmptyPhysRange { base, end })
        }
    }

    fn contains(&self, paddr: u32) -> bool {
        paddr >= self.base && paddr < self.end
    }
}

/// Per-core physical access policy.
#[derive(Debug, Clone, Default)]
struct CorePolicy {
    privileged: bool,
    ranges: Vec<PhysRange>,
}

/// Watchdog statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Checks performed (accesses by unprivileged cores).
    pub checks: u64,
    /// Blocked accesses.
    pub violations: u64,
}

/// The per-core physical range checker.
#[derive(Debug)]
pub struct MemoryWatchdog {
    cores: Vec<CorePolicy>,
    stats: WatchdogStats,
    /// Policy generation — bumped by every policy mutation so host-side
    /// caches that pre-validate accesses (the superblock engine hoists
    /// per-fetch range scans) can pin the policy they validated against.
    gen: u64,
}

impl MemoryWatchdog {
    /// Creates a watchdog for `n_cores` cores, all unprivileged with no
    /// ranges (i.e. nothing allowed) until configured.
    #[must_use]
    pub fn new(n_cores: usize) -> MemoryWatchdog {
        MemoryWatchdog {
            cores: vec![CorePolicy::default(); n_cores],
            stats: WatchdogStats::default(),
            gen: 1,
        }
    }

    /// Grants a core privileged (unchecked) access — the resurrector.
    pub fn set_privileged(&mut self, core: usize, privileged: bool) {
        self.gen += 1;
        self.cores[core].privileged = privileged;
    }

    /// Whether the core bypasses range checks.
    #[must_use]
    pub fn is_privileged(&self, core: usize) -> bool {
        self.cores[core].privileged
    }

    /// Adds an allowed physical range to an unprivileged core.
    pub fn allow(&mut self, core: usize, range: PhysRange) {
        self.gen += 1;
        self.cores[core].ranges.push(range);
    }

    /// Removes all allowed ranges from a core (used when re-assigning
    /// memory after recovery).
    pub fn clear(&mut self, core: usize) {
        self.gen += 1;
        self.cores[core].ranges.clear();
    }

    /// Current policy generation (see the field docs). Any change means
    /// previously hoisted/pre-validated checks are void.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Whether an access by `core` to `paddr` would pass, without
    /// touching statistics — used when *translating* a superblock, where
    /// the simulated check has not happened yet.
    #[must_use]
    pub fn peek(&self, core: usize, paddr: u32, _kind: AccessKind) -> bool {
        let policy = &self.cores[core];
        policy.privileged || policy.ranges.iter().any(|r| r.contains(paddr))
    }

    /// Accounts for `n` fetch checks that were hoisted out of the hot
    /// loop: the superblock translator proved (under a pinned
    /// generation) that every fetch in the block passes, so execution
    /// only needs the statistics side effect [`MemoryWatchdog::check`]
    /// would have had — one `checks` tick per unprivileged access,
    /// nothing for privileged cores.
    pub fn note_passed_checks(&mut self, core: usize, n: u64) {
        if !self.cores[core].privileged {
            self.stats.checks += n;
        }
    }

    /// Checks an access by `core` to `paddr`.
    ///
    /// # Errors
    ///
    /// [`Fault::Watchdog`] when the core is unprivileged and no assigned
    /// range covers the address.
    pub fn check(&mut self, core: usize, paddr: u32, kind: AccessKind) -> Result<(), Fault> {
        let policy = &self.cores[core];
        if policy.privileged {
            return Ok(());
        }
        self.stats.checks += 1;
        if policy.ranges.iter().any(|r| r.contains(paddr)) {
            Ok(())
        } else {
            self.stats.violations += 1;
            Err(Fault::Watchdog { paddr, kind })
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> WatchdogStats {
        self.stats
    }

    /// Captures the watchdog's full configuration and statistics.
    #[must_use]
    pub fn save_state(&self) -> WatchdogState {
        WatchdogState {
            cores: self
                .cores
                .iter()
                .map(|c| WatchdogCoreState { privileged: c.privileged, ranges: c.ranges.clone() })
                .collect(),
            stats: self.stats,
        }
    }

    /// Restores state captured by [`MemoryWatchdog::save_state`].
    ///
    /// # Panics
    ///
    /// Panics when the saved core count does not match.
    pub fn restore_state(&mut self, state: &WatchdogState) {
        assert_eq!(state.cores.len(), self.cores.len(), "watchdog state core-count mismatch");
        self.gen += 1;
        for (core, s) in self.cores.iter_mut().zip(&state.cores) {
            core.privileged = s.privileged;
            core.ranges.clone_from(&s.ranges);
        }
        self.stats = state.stats;
    }
}

/// One core's saved watchdog policy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatchdogCoreState {
    /// Whether the core bypasses range checks.
    pub privileged: bool,
    /// Allowed physical ranges, in insertion order.
    pub ranges: Vec<PhysRange>,
}

/// Complete mutable state of a [`MemoryWatchdog`], captured by
/// [`MemoryWatchdog::save_state`] for the durable-checkpoint subsystem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatchdogState {
    /// Per-core policies.
    pub cores: Vec<WatchdogCoreState>,
    /// Accumulated statistics.
    pub stats: WatchdogStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privileged_core_bypasses() {
        let mut w = MemoryWatchdog::new(2);
        w.set_privileged(0, true);
        assert!(w.check(0, 0xFFFF_FFF0, AccessKind::Write).is_ok());
        assert_eq!(w.stats().checks, 0, "privileged accesses are not even checked");
    }

    #[test]
    fn unprivileged_needs_a_range() {
        let mut w = MemoryWatchdog::new(2);
        assert!(w.check(1, 0x1000, AccessKind::Read).is_err());
        w.allow(1, PhysRange::try_new(0x1000, 0x2000).unwrap());
        assert!(w.check(1, 0x1000, AccessKind::Read).is_ok());
        assert!(w.check(1, 0x1FFF, AccessKind::Read).is_ok());
        assert!(w.check(1, 0x2000, AccessKind::Read).is_err(), "end is exclusive");
        assert_eq!(w.stats().violations, 2);
    }

    #[test]
    fn resurrectee_cannot_reach_resurrector_memory() {
        // Boot-like setup: resurrector owns [0, 0x10000); resurrectee gets
        // [0x10000, 0x20000).
        let mut w = MemoryWatchdog::new(2);
        w.set_privileged(0, true);
        w.allow(1, PhysRange::try_new(0x10000, 0x20000).unwrap());
        assert!(w.check(1, 0x08000, AccessKind::Read).is_err());
        assert!(w.check(1, 0x18000, AccessKind::Write).is_ok());
        assert!(w.check(0, 0x18000, AccessKind::Write).is_ok(), "resurrector sees all");
    }

    #[test]
    fn clear_revokes() {
        let mut w = MemoryWatchdog::new(1);
        w.allow(0, PhysRange::try_new(0, 0x1000).unwrap());
        assert!(w.check(0, 0, AccessKind::Read).is_ok());
        w.clear(0);
        assert!(w.check(0, 0, AccessKind::Read).is_err());
    }

    #[test]
    fn peek_matches_check_without_stats_and_generation_tracks_policy() {
        let mut w = MemoryWatchdog::new(2);
        let g0 = w.generation();
        w.set_privileged(0, true);
        w.allow(1, PhysRange::try_new(0x1000, 0x2000).unwrap());
        assert!(w.generation() > g0, "policy edits bump the generation");
        assert!(w.peek(0, 0xFFFF_0000, AccessKind::Write), "privileged passes");
        assert!(w.peek(1, 0x1800, AccessKind::Execute));
        assert!(!w.peek(1, 0x3000, AccessKind::Execute));
        assert_eq!(w.stats(), WatchdogStats::default(), "peek never touches stats");
        // Hoisted accounting matches what per-access checks would record.
        w.note_passed_checks(1, 5);
        w.note_passed_checks(0, 5); // privileged: no ticks
        assert_eq!(w.stats().checks, 5);
        let g1 = w.generation();
        let snap = w.save_state();
        w.restore_state(&snap);
        assert!(w.generation() > g1, "restore voids hoisted validations");
    }

    #[test]
    fn empty_range_is_a_typed_error() {
        let err = PhysRange::try_new(5, 5).unwrap_err();
        assert_eq!(err, EmptyPhysRange { base: 5, end: 5 });
        assert!(err.to_string().contains("empty physical range"));
        assert!(PhysRange::try_new(6, 5).is_err(), "inverted range is empty too");
        assert!(PhysRange::try_new(5, 6).is_ok());
    }
}
