//! Architectural edge cases of the core: r0 semantics, jalr alignment
//! masking, signed-boundary branches, page-crossing code, and context
//! switching between address spaces.

use indra_isa::{assemble, Reg};
use indra_sim::{CoreStep, Machine, MachineConfig};

fn run_asm(src: &str) -> Machine {
    let mut m = Machine::new(MachineConfig::default());
    m.boot_asymmetric();
    m.set_monitoring(false);
    let img = assemble("t", src).unwrap();
    m.create_space(4);
    m.load_image(4, &img).unwrap();
    m.core_mut(1).set_asid(4);
    m.core_mut(1).set_pc(img.entry);
    m.core_mut(1).set_reg(Reg::SP, img.initial_sp);
    for _ in 0..10_000_000u64 {
        match m.step_core_simple(1) {
            CoreStep::Executed => {}
            CoreStep::Halted => return m,
            other => panic!("unexpected {other:?}"),
        }
    }
    panic!("no halt");
}

#[test]
fn writes_to_zero_register_are_discarded() {
    let m = run_asm(
        "
    main:
        li   zero, 123
        addi zero, zero, 7
        add  a0, zero, zero
        halt
    ",
    );
    assert_eq!(m.core(1).reg(Reg::ZERO), 0);
    assert_eq!(m.core(1).reg(Reg::A0), 0);
}

#[test]
fn jalr_masks_target_alignment() {
    // Jump through a register holding target+2: hardware clears the low
    // bits, so execution lands on the aligned instruction.
    let m = run_asm(
        "
    main:
        la  t0, dest
        addi t0, t0, 2       # deliberately misaligned
        jr  t0
        halt                 # skipped
    dest:
        li a0, 55
        halt
    ",
    );
    assert_eq!(m.core(1).reg(Reg::A0), 55);
}

#[test]
fn signed_branch_at_int_min() {
    let m = run_asm(
        "
    main:
        li  t0, 0x80000000   # i32::MIN
        li  t1, 0
        blt t0, t1, neg      # INT_MIN < 0 signed
        li  a0, 1
        halt
    neg:
        bltu t0, t1, wrong   # but not unsigned-less-than 0
        li  a0, 2
        halt
    wrong:
        li  a0, 3
        halt
    ",
    );
    assert_eq!(m.core(1).reg(Reg::A0), 2);
}

#[test]
fn wrapping_address_arithmetic() {
    let m = run_asm(
        "
    main:
        li  t0, 0x7FFFFFFF
        addi t0, t0, 1       # wraps to 0x80000000, no trap
        srli a0, t0, 31      # == 1
        halt
    ",
    );
    assert_eq!(m.core(1).reg(Reg::A0), 1);
}

#[test]
fn division_conventions() {
    let m = run_asm(
        "
    main:
        li  t0, 7
        li  t1, 0
        div a0, t0, t1       # div-by-zero -> all ones
        rem a1, t0, t1       # rem-by-zero -> dividend
        li  t2, -8
        li  t3, 2
        div a2, t2, t3       # -4
        halt
    ",
    );
    assert_eq!(m.core(1).reg(Reg::A0), u32::MAX);
    assert_eq!(m.core(1).reg(Reg::A1), 7);
    assert_eq!(m.core(1).reg(Reg::A2), (-4i32) as u32);
}

#[test]
fn code_spanning_many_pages_executes() {
    // Enough straight-line code to cross several code pages (fetch paging
    // + IL1 behaviour on boundaries).
    let mut body = String::from("main:\n li a0, 0\n");
    for _ in 0..3000 {
        body.push_str(" addi a0, a0, 1\n");
    }
    body.push_str(" halt\n");
    let m = run_asm(&body);
    assert_eq!(m.core(1).reg(Reg::A0), 3000);
    // 3000 instructions ≈ 12 KB of text: several pages, several IL1 sets.
    assert!(m.core(1).retired() >= 3000);
}

#[test]
fn two_address_spaces_are_isolated() {
    // The same VA in two ASIDs maps to different frames; run a program in
    // each and check their data stays apart.
    let mut m = Machine::new(MachineConfig::symmetric(2));
    m.boot_symmetric();
    let img = assemble(
        "iso",
        "
    main:
        la  t0, cell
        lw  a0, 0(t0)
        addi a0, a0, 1
        sw  a0, 0(t0)
        halt
    .data
    cell: .word 0
    ",
    )
    .unwrap();
    m.create_space(1);
    m.create_space(2);
    m.load_image(1, &img).unwrap();
    m.load_image(2, &img).unwrap();
    let cell = img.addr_of("cell").unwrap();

    // Run twice in ASID 1, once in ASID 2.
    for (asid, times) in [(1u16, 2u32), (2, 1)] {
        for _ in 0..times {
            m.core_mut(0).set_asid(asid);
            m.core_mut(0).set_pc(img.entry);
            m.core_mut(0).set_reg(Reg::SP, img.initial_sp);
            m.core_mut(0).clear_halt();
            loop {
                match m.step_core_simple(0) {
                    CoreStep::Executed => {}
                    CoreStep::Halted => break,
                    other => panic!("{other:?}"),
                }
            }
        }
    }
    assert_eq!(m.read_virtual_u32(1, cell), Some(2));
    assert_eq!(m.read_virtual_u32(2, cell), Some(1));
}

#[test]
fn store_byte_preserves_neighbors() {
    let m = run_asm(
        "
    main:
        la  t0, word
        li  t1, 0xAA
        sb  t1, 1(t0)        # only byte 1
        lw  a0, 0(t0)
        halt
    .data
    word: .word 0x11223344
    ",
    );
    assert_eq!(m.core(1).reg(Reg::A0), 0x1122_AA44);
}
