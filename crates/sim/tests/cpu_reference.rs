//! Differential testing of the whole toolchain+CPU stack: random ALU/load/
//! store programs are emitted through `ProgramBuilder`, encoded to machine
//! code, loaded into the simulated machine and executed — then the final
//! register file is compared against a direct host-side interpretation of
//! the same operation list. Any divergence in the builder, the encoder,
//! the decoder or the core's execute stage shows up here.

use indra_isa::{AluOp, Instruction, ProgramBuilder, Reg};
use indra_rng::{forall, Rng};
use indra_sim::{CoreStep, Machine, MachineConfig};

#[derive(Debug, Clone, Copy)]
enum Op {
    Alu(AluOp, u8, u8, u8), // rd, rs1, rs2 (indices into WORK_REGS)
    AluImm(AluOp, u8, u8, i32),
    StoreLoad(u8, u8, u32), // store rs, reload into rd, at scratch offset
}

/// The registers the generated programs compute in (avoids zero/sp/etc.).
const WORK_REGS: [Reg; 6] = [Reg::T0, Reg::T1, Reg::T2, Reg::S0, Reg::S1, Reg::S2];

const ALU_OPS: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

const IMM_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Mul,
];

fn gen_op(rng: &mut Rng) -> Op {
    match rng.range_u32(0, 3) {
        0 => Op::Alu(
            *rng.pick(&ALU_OPS),
            rng.range_u32(0, 6) as u8,
            rng.range_u32(0, 6) as u8,
            rng.range_u32(0, 6) as u8,
        ),
        1 => {
            let op = *rng.pick(&IMM_OPS);
            let imm = if matches!(op, AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Sltu) {
                rng.range_i32(0, 65536)
            } else {
                rng.range_i32(-32768, 32768)
            };
            Op::AluImm(op, rng.range_u32(0, 6) as u8, rng.range_u32(0, 6) as u8, imm)
        }
        _ => Op::StoreLoad(
            rng.range_u32(0, 6) as u8,
            rng.range_u32(0, 6) as u8,
            rng.range_u32(0, 64),
        ),
    }
}

/// Host-side reference semantics.
fn interpret(seeds: &[u32; 6], ops: &[Op]) -> [u32; 6] {
    let mut regs = *seeds;
    let mut scratch = [0u32; 64];
    for &op in ops {
        match op {
            Op::Alu(op, d, a, b) => {
                regs[d as usize] = op.apply(regs[a as usize], regs[b as usize]);
            }
            Op::AluImm(op, d, a, imm) => {
                regs[d as usize] = op.apply(regs[a as usize], imm as u32);
            }
            Op::StoreLoad(d, s, slot) => {
                scratch[slot as usize] = regs[s as usize];
                regs[d as usize] = scratch[slot as usize];
            }
        }
    }
    regs
}

/// Emit the same ops as a real program and run it on the machine.
fn execute(seeds: &[u32; 6], ops: &[Op]) -> [u32; 6] {
    let mut b = ProgramBuilder::new("diff");
    let scratch = b.data_zeroed("scratch", 256);
    b.begin_func("main", true);
    b.la_data(Reg::A3, scratch, 0);
    for (i, &seed) in seeds.iter().enumerate() {
        b.li(WORK_REGS[i], seed as i32);
    }
    for &op in ops {
        match op {
            Op::Alu(op, d, a, b_) => {
                b.alu(op, WORK_REGS[d as usize], WORK_REGS[a as usize], WORK_REGS[b_ as usize])
            }
            Op::AluImm(op, d, a, imm) => b.inst(Instruction::AluImm {
                op,
                rd: WORK_REGS[d as usize],
                rs1: WORK_REGS[a as usize],
                imm,
            }),
            Op::StoreLoad(d, s, slot) => {
                b.sw(WORK_REGS[s as usize], Reg::A3, slot as i32 * 4);
                b.lw(WORK_REGS[d as usize], Reg::A3, slot as i32 * 4);
            }
        }
    }
    b.halt();
    b.end_func();
    let image = b.finish().expect("diff program builds");

    let mut m = Machine::new(MachineConfig::default());
    m.boot_asymmetric();
    m.set_monitoring(false);
    m.create_space(3);
    m.load_image(3, &image).expect("loads");
    m.core_mut(1).set_asid(3);
    m.core_mut(1).set_pc(image.entry);
    m.core_mut(1).set_reg(Reg::SP, image.initial_sp);
    loop {
        match m.step_core_simple(1) {
            CoreStep::Executed => {}
            CoreStep::Halted => break,
            other => panic!("unexpected {other:?}"),
        }
    }
    let mut out = [0u32; 6];
    for (i, r) in WORK_REGS.iter().enumerate() {
        out[i] = m.core(1).reg(*r);
    }
    out
}

#[test]
fn machine_matches_reference_interpreter() {
    forall("machine_matches_reference_interpreter", 48, |rng| {
        let mut seeds = [0u32; 6];
        for s in &mut seeds {
            *s = rng.next_u32();
        }
        let ops: Vec<Op> = (0..rng.range_usize(1, 60)).map(|_| gen_op(rng)).collect();
        let expected = interpret(&seeds, &ops);
        let actual = execute(&seeds, &ops);
        assert_eq!(actual, expected);
    });
}
