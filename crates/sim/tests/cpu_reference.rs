//! Differential testing of the whole toolchain+CPU stack: random ALU/load/
//! store programs are emitted through `ProgramBuilder`, encoded to machine
//! code, loaded into the simulated machine and executed — then the final
//! register file is compared against a direct host-side interpretation of
//! the same operation list. Any divergence in the builder, the encoder,
//! the decoder or the core's execute stage shows up here.

use proptest::prelude::*;

use indra_isa::{AluOp, Instruction, ProgramBuilder, Reg};
use indra_sim::{CoreStep, Machine, MachineConfig};

#[derive(Debug, Clone, Copy)]
enum Op {
    Alu(AluOp, u8, u8, u8),    // rd, rs1, rs2 (indices into WORK_REGS)
    AluImm(AluOp, u8, u8, i32),
    StoreLoad(u8, u8, u32),    // store rs, reload into rd, at scratch offset
}

/// The registers the generated programs compute in (avoids zero/sp/etc.).
const WORK_REGS: [Reg; 6] = [Reg::T0, Reg::T1, Reg::T2, Reg::S0, Reg::S1, Reg::S2];

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

fn imm_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (alu_op(), 0u8..6, 0u8..6, 0u8..6).prop_map(|(op, d, a, b)| Op::Alu(op, d, a, b)),
        (imm_op(), 0u8..6, 0u8..6).prop_flat_map(|(op, d, a)| {
            let range = if matches!(op, AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Sltu) {
                0i32..65536
            } else {
                -32768i32..32768
            };
            range.prop_map(move |imm| Op::AluImm(op, d, a, imm))
        }),
        (0u8..6, 0u8..6, 0u32..64).prop_map(|(d, s, slot)| Op::StoreLoad(d, s, slot)),
    ]
}

/// Host-side reference semantics.
fn interpret(seeds: &[u32; 6], ops: &[Op]) -> [u32; 6] {
    let mut regs = *seeds;
    let mut scratch = [0u32; 64];
    for &op in ops {
        match op {
            Op::Alu(op, d, a, b) => {
                regs[d as usize] = op.apply(regs[a as usize], regs[b as usize]);
            }
            Op::AluImm(op, d, a, imm) => {
                regs[d as usize] = op.apply(regs[a as usize], imm as u32);
            }
            Op::StoreLoad(d, s, slot) => {
                scratch[slot as usize] = regs[s as usize];
                regs[d as usize] = scratch[slot as usize];
            }
        }
    }
    regs
}

/// Emit the same ops as a real program and run it on the machine.
fn execute(seeds: &[u32; 6], ops: &[Op]) -> [u32; 6] {
    let mut b = ProgramBuilder::new("diff");
    let scratch = b.data_zeroed("scratch", 256);
    b.begin_func("main", true);
    b.la_data(Reg::A3, scratch, 0);
    for (i, &seed) in seeds.iter().enumerate() {
        b.li(WORK_REGS[i], seed as i32);
    }
    for &op in ops {
        match op {
            Op::Alu(op, d, a, b_) => b.alu(
                op,
                WORK_REGS[d as usize],
                WORK_REGS[a as usize],
                WORK_REGS[b_ as usize],
            ),
            Op::AluImm(op, d, a, imm) => b.inst(Instruction::AluImm {
                op,
                rd: WORK_REGS[d as usize],
                rs1: WORK_REGS[a as usize],
                imm,
            }),
            Op::StoreLoad(d, s, slot) => {
                b.sw(WORK_REGS[s as usize], Reg::A3, slot as i32 * 4);
                b.lw(WORK_REGS[d as usize], Reg::A3, slot as i32 * 4);
            }
        }
    }
    b.halt();
    b.end_func();
    let image = b.finish().expect("diff program builds");

    let mut m = Machine::new(MachineConfig::default());
    m.boot_asymmetric();
    m.set_monitoring(false);
    m.create_space(3);
    m.load_image(3, &image).expect("loads");
    m.core_mut(1).set_asid(3);
    m.core_mut(1).set_pc(image.entry);
    m.core_mut(1).set_reg(Reg::SP, image.initial_sp);
    loop {
        match m.step_core_simple(1) {
            CoreStep::Executed => {}
            CoreStep::Halted => break,
            other => panic!("unexpected {other:?}"),
        }
    }
    let mut out = [0u32; 6];
    for (i, r) in WORK_REGS.iter().enumerate() {
        out[i] = m.core(1).reg(*r);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn machine_matches_reference_interpreter(
        seeds in proptest::array::uniform6(any::<u32>()),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let expected = interpret(&seeds, &ops);
        let actual = execute(&seeds, &ops);
        prop_assert_eq!(actual, expected);
    }
}
