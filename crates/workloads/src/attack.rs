//! Exploit payload generation (§4.1's attack suite, Table 2's classes).
//!
//! The paper validates recovery with real CVE exploits (CAN-2003-0651,
//! VU#196945, CAN-2003-0466, CAN-2004-0640). Our services carry the same
//! vulnerability *classes*, so each generator below produces a request
//! that genuinely corrupts the simulated server through the documented
//! bugs in `gen.rs` — nothing is asserted by fiat; if the monitor were
//! absent the exploit actually takes control (see the
//! `code_injection_runs_unmonitored` test).

use indra_isa::{Image, Instruction, Reg};

use crate::gen::{PAYLOAD_OFFSET, VULN_BUF_LEN};

/// Attack classes against the generated services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attack {
    /// Overflow the stack buffer in `parse`, overwriting the saved return
    /// address with `target` (an arbitrary code address — detected by
    /// call/return inspection as a `ReturnMismatch`).
    StackSmash {
        /// Where the smashed return jumps.
        target: u32,
    },
    /// Stack smash whose target is injected IR32 code *inside the request
    /// buffer itself*: if undetected, the injected code executes (our
    /// payload performs `exit(0x31337)`). Detected by code-origin
    /// inspection (or, earlier, by call/return inspection).
    CodeInjection,
    /// Overflow the global buffer in `ingest`, overwriting `handlers[0]`
    /// with `target`; the next dispatch through the table becomes an
    /// indirect call to an illegitimate target.
    HandlerHijack {
        /// The planted function-pointer value.
        target: u32,
    },
    /// Function-pointer overwrite whose target is injected shellcode in
    /// the request buffer — the canonical *code injection* of Table 2:
    /// the dispatch is an indirect call (so call/return inspection sees a
    /// plausible call), and the injected page is the give-away that only
    /// code-origin inspection catches.
    InjectedHandler,
    /// Opcode-7 wild write through an attacker pointer — crashes the
    /// service mid-request, after roughly a third of the normal
    /// processing work (the DoS/fault path; caught as a hardware fault).
    WildWrite {
        /// The pointer the service dereferences.
        addr: u32,
    },
    /// Opcode-8 dormant corruption: plants a bad pointer that only
    /// fells *later* (benign) requests — the case that defeats pure
    /// micro-recovery and exercises the hybrid scheme (Fig. 8).
    Dormant {
        /// The planted pointer.
        addr: u32,
    },
    /// A format-string-style attack (§2.1): the opcode-9 formatter's
    /// `%n`-analogue directive writes `value` to an arbitrary address.
    /// The canonical payload overwrites `handlers[1]` — the very entry
    /// the same request dispatches through (9 & 3 == 1).
    FormatString {
        /// The hijacked function-pointer value planted into the table.
        value: u32,
    },
}

/// An address that is mapped for no service (wild-write target).
pub const UNMAPPED_ADDR: u32 = 0xF000_0000;

/// Encodes a request in the wire format of [`crate::gen`].
#[must_use]
pub fn encode_request(
    opcode: u8,
    stack_copy_len: u16,
    glob_copy_len: u16,
    arg: u32,
    payload: &[u8],
) -> Vec<u8> {
    let mut req = vec![0u8; PAYLOAD_OFFSET as usize + payload.len()];
    req[0] = opcode;
    req[2..4].copy_from_slice(&stack_copy_len.to_le_bytes());
    req[4..6].copy_from_slice(&glob_copy_len.to_le_bytes());
    req[6..10].copy_from_slice(&arg.to_le_bytes());
    req[PAYLOAD_OFFSET as usize..].copy_from_slice(payload);
    req
}

/// A well-formed benign request: in-bounds copy lengths, payload sized to
/// match, opcode selecting one of the four handlers.
#[must_use]
pub fn benign_request(opcode: u8, fill: u8) -> Vec<u8> {
    let stack_len = 16 + u16::from(fill % 48); // always ≤ 64
    let glob_len = 8 + u16::from(fill % 56); // always ≤ 64
    let payload = vec![fill; 64];
    encode_request(opcode & 3, stack_len, glob_len, 0, &payload)
}

/// Builds the malicious request for `attack` against `image`.
///
/// # Panics
///
/// Panics if `image` lacks the standard service symbols (i.e. it was not
/// produced by [`crate::build_service`]).
#[must_use]
pub fn attack_request(attack: Attack, image: &Image) -> Vec<u8> {
    match attack {
        Attack::StackSmash { target } => {
            // 64 filler bytes, then 4 bytes landing exactly on the saved
            // return address at sp+64.
            let mut payload = vec![0x41u8; VULN_BUF_LEN as usize + 4];
            payload[VULN_BUF_LEN as usize..].copy_from_slice(&target.to_le_bytes());
            encode_request(0, VULN_BUF_LEN as u16 + 4, 0, 0, &payload)
        }
        Attack::CodeInjection => {
            let code_addr = injected_code_addr(image);
            let code_payload_off = 74usize;
            let mut payload = vec![0x41u8; code_payload_off + shellcode_words().len() * 4];
            payload[VULN_BUF_LEN as usize..VULN_BUF_LEN as usize + 4]
                .copy_from_slice(&code_addr.to_le_bytes());
            for (i, word) in shellcode_words().iter().enumerate() {
                payload[code_payload_off + i * 4..code_payload_off + i * 4 + 4]
                    .copy_from_slice(&word.to_le_bytes());
            }
            encode_request(0, VULN_BUF_LEN as u16 + 4, 0, 0, &payload)
        }
        Attack::HandlerHijack { target } => {
            let mut payload = vec![0x42u8; VULN_BUF_LEN as usize + 4];
            payload[VULN_BUF_LEN as usize..].copy_from_slice(&target.to_le_bytes());
            // opcode 0 so the very same request dispatches through the
            // clobbered handlers[0].
            encode_request(0, 0, VULN_BUF_LEN as u16 + 4, 0, &payload)
        }
        Attack::InjectedHandler => {
            let code_addr = injected_code_addr(image);
            let code_payload_off = 74usize;
            let mut payload = vec![0x42u8; code_payload_off + shellcode_words().len() * 4];
            payload[VULN_BUF_LEN as usize..VULN_BUF_LEN as usize + 4]
                .copy_from_slice(&code_addr.to_le_bytes());
            for (i, word) in shellcode_words().iter().enumerate() {
                payload[code_payload_off + i * 4..code_payload_off + i * 4 + 4]
                    .copy_from_slice(&word.to_le_bytes());
            }
            encode_request(0, 0, VULN_BUF_LEN as u16 + 4, 0, &payload)
        }
        Attack::WildWrite { addr } => encode_request(7, 0, 0, addr, &[0u8; 4]),
        Attack::Dormant { addr } => encode_request(8, 0, 0, addr, &[0u8; 4]),
        Attack::FormatString { value } => {
            let handlers = image.addr_of("handlers").expect("service image has handlers");
            // [0xFF][addr: handlers[1]][value]: one write directive.
            let mut payload = vec![0xFFu8];
            payload.extend_from_slice(&(handlers + 4).to_le_bytes());
            payload.extend_from_slice(&value.to_le_bytes());
            encode_request(9, 0, 0, payload.len() as u32, &payload)
        }
    }
}

/// Every attack class, aimed at real targets inside `image` — the fleet
/// harness's default exploit arsenal. The hijack-style entries aim at
/// `handler_0 + 8`: a genuine code address that is *not* a legitimate
/// call target, so call/return or control-transfer inspection must flag
/// it.
///
/// # Panics
///
/// Panics if `image` lacks the standard service symbols.
#[must_use]
pub fn standard_attack_suite(image: &Image) -> Vec<Attack> {
    let mut suite = detectable_attack_suite(image);
    suite.push(Attack::Dormant { addr: UNMAPPED_ADDR });
    suite
}

/// The attack classes whose detection lands *within the offending
/// request* (everything but [`Attack::Dormant`], whose corruption fells a
/// later benign request). Fleet runs that assert "every injected attack
/// was detected while it was in flight" draw from this set.
///
/// # Panics
///
/// Panics if `image` lacks the standard service symbols.
#[must_use]
pub fn detectable_attack_suite(image: &Image) -> Vec<Attack> {
    let mid_function = image.addr_of("handler_0").expect("service image has handler_0") + 8;
    vec![
        Attack::StackSmash { target: mid_function },
        Attack::CodeInjection,
        Attack::HandlerHijack { target: mid_function },
        Attack::InjectedHandler,
        Attack::WildWrite { addr: UNMAPPED_ADDR },
        Attack::FormatString { value: mid_function },
    ]
}

/// Encodes an opcode-9 format request carrying several write directives
/// — `(addr, value)` pairs, each landing one arbitrary 32-bit store via
/// the formatter's `%n`-analogue — after `pad` benign filler bytes that
/// stretch the scan (the red-team campaign's detection-latency knob).
/// This is the multi-write generalization of [`Attack::FormatString`]:
/// one request can rewrite several code-pointer slots before its own
/// dispatch runs.
#[must_use]
pub fn format_writes_request(writes: &[(u32, u32)], pad: usize) -> Vec<u8> {
    let mut payload = vec![0x2Eu8; pad];
    for &(addr, value) in writes {
        payload.push(0xFF);
        payload.extend_from_slice(&addr.to_le_bytes());
        payload.extend_from_slice(&value.to_le_bytes());
    }
    encode_request(9, 0, 0, payload.len() as u32, &payload)
}

/// An opcode-9 request whose declared format length far exceeds its
/// payload: the formatter scans adjacent service data byte by byte
/// (interpreting any `0xFF` it meets as a write directive) until the
/// watchdog or a fault stops it — the resource-exhaustion shape.
#[must_use]
pub fn format_overscan_request(scan_len: u32) -> Vec<u8> {
    encode_request(9, 0, 0, scan_len, &[0x2E; 16])
}

/// The address injected code lands at for [`Attack::CodeInjection`] and
/// [`Attack::InjectedHandler`] against `image`: payload offset 74 keeps
/// it word-aligned (used by tests to confirm detection coordinates).
///
/// # Panics
///
/// Panics on an image without the `rxbuf` symbol.
#[must_use]
pub fn injected_code_addr(image: &Image) -> u32 {
    let addr = image.addr_of("rxbuf").expect("rxbuf") + PAYLOAD_OFFSET + 74;
    assert!(addr.is_multiple_of(4));
    addr
}

/// The encoded shellcode: `exit(0x31337)` — proof of arbitrary code
/// execution when it runs unmonitored.
#[must_use]
pub fn shellcode_words() -> Vec<u32> {
    [
        Instruction::Lui { rd: Reg::A0, imm: 0x3 },
        Instruction::AluImm { op: indra_isa::AluOp::Or, rd: Reg::A0, rs1: Reg::A0, imm: 0x1337 },
        Instruction::Syscall { code: indra_os::syscall::SYS_EXIT },
    ]
    .iter()
    .map(|i| i.encode().expect("shellcode encodes"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_app_scaled, ServiceApp};

    #[test]
    fn benign_requests_stay_in_bounds() {
        for fill in 0..=255u8 {
            let req = benign_request(fill, fill);
            let stack_len = u16::from_le_bytes([req[2], req[3]]);
            let glob_len = u16::from_le_bytes([req[4], req[5]]);
            assert!(stack_len <= VULN_BUF_LEN as u16);
            assert!(glob_len <= VULN_BUF_LEN as u16);
            assert!(req.len() >= PAYLOAD_OFFSET as usize + stack_len as usize);
        }
    }

    #[test]
    fn stack_smash_places_target_on_ra() {
        let img = build_app_scaled(ServiceApp::Httpd, 20);
        let req = attack_request(Attack::StackSmash { target: 0xDEAD_BEE0 }, &img);
        let off = PAYLOAD_OFFSET as usize + VULN_BUF_LEN as usize;
        assert_eq!(u32::from_le_bytes(req[off..off + 4].try_into().unwrap()), 0xDEAD_BEE0);
        let stack_len = u16::from_le_bytes([req[2], req[3]]);
        assert_eq!(stack_len, 68, "copy must reach exactly past the saved ra");
    }

    #[test]
    fn injected_code_is_valid_ir32() {
        let img = build_app_scaled(ServiceApp::Httpd, 20);
        let req = attack_request(Attack::CodeInjection, &img);
        let code_off = PAYLOAD_OFFSET as usize + 74;
        for i in 0..3 {
            let word =
                u32::from_le_bytes(req[code_off + i * 4..code_off + i * 4 + 4].try_into().unwrap());
            assert!(Instruction::decode(word).is_ok(), "shellcode word {i} must decode");
        }
        assert!(injected_code_addr(&img).is_multiple_of(4));
    }

    #[test]
    fn hijack_overwrites_table_via_ingest_len() {
        let img = build_app_scaled(ServiceApp::Httpd, 20);
        let req = attack_request(Attack::HandlerHijack { target: 0x1234_5678 }, &img);
        let glob_len = u16::from_le_bytes([req[4], req[5]]);
        assert_eq!(glob_len, 68);
        assert_eq!(req[0], 0, "dispatches through handlers[0]");
    }

    #[test]
    fn format_string_targets_the_dispatch_entry() {
        let img = build_app_scaled(ServiceApp::Httpd, 20);
        let req = attack_request(Attack::FormatString { value: 0x4455_6677 }, &img);
        assert_eq!(req[0], 9);
        let p = PAYLOAD_OFFSET as usize;
        assert_eq!(req[p], 0xFF, "write directive marker");
        let addr = u32::from_le_bytes(req[p + 1..p + 5].try_into().unwrap());
        assert_eq!(addr, img.addr_of("handlers").unwrap() + 4, "aims at handlers[1]");
        let val = u32::from_le_bytes(req[p + 5..p + 9].try_into().unwrap());
        assert_eq!(val, 0x4455_6677);
    }

    #[test]
    fn format_writes_encodes_every_directive_after_the_pad() {
        let req = format_writes_request(&[(0x1000, 7), (0x2000, 9)], 5);
        assert_eq!(req[0], 9);
        let p = PAYLOAD_OFFSET as usize;
        let arg = u32::from_le_bytes(req[6..10].try_into().unwrap());
        assert_eq!(arg as usize, 5 + 2 * 9, "scan length covers pad + directives");
        assert_eq!(req[p + 5], 0xFF);
        assert_eq!(u32::from_le_bytes(req[p + 6..p + 10].try_into().unwrap()), 0x1000);
        assert_eq!(u32::from_le_bytes(req[p + 10..p + 14].try_into().unwrap()), 7);
        assert_eq!(req[p + 14], 0xFF);
        assert_eq!(u32::from_le_bytes(req[p + 15..p + 19].try_into().unwrap()), 0x2000);
    }

    #[test]
    fn overscan_declares_more_than_it_carries() {
        let req = format_overscan_request(100_000);
        assert_eq!(req[0], 9);
        let arg = u32::from_le_bytes(req[6..10].try_into().unwrap());
        assert!(arg as usize > req.len());
    }

    #[test]
    fn wild_and_dormant_carry_the_pointer() {
        let img = build_app_scaled(ServiceApp::Httpd, 20);
        let w = attack_request(Attack::WildWrite { addr: UNMAPPED_ADDR }, &img);
        assert_eq!(w[0], 7);
        assert_eq!(u32::from_le_bytes(w[6..10].try_into().unwrap()), UNMAPPED_ADDR);
        let d = attack_request(Attack::Dormant { addr: UNMAPPED_ADDR }, &img);
        assert_eq!(d[0], 8);
    }
}
