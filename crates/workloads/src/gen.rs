//! The synthetic server generator.
//!
//! Emits a complete IR32 network service from a [`WorkloadSpec`]. All six
//! evaluated daemons share this skeleton:
//!
//! ```text
//! main: loop {
//!     len = net_recv(rxbuf, 2048)
//!     parse(rxbuf)        // VULN 1: length-unchecked copy to stack buffer
//!     ingest(rxbuf)       // VULN 2: length-unchecked copy to a global
//!                         //          buffer directly below the handler
//!                         //          function-pointer table
//!     if latch != 0 { *latch }            // dormant-corruption trigger
//!     if op == 7 { *(u32*)arg = arg }     // wild-write opcode (DoS bug)
//!     if op == 8 { latch = arg }          // dormant-corruption plant
//!     if op == 9 { logfmt(rxbuf) }        // VULN 3: format-string-style
//!                                         //   write-anywhere directive
//!     handlers[op & 3]()  // indirect dispatch through the table
//!                         //   (the handler logs to a file mid-request)
//!     net_send(txbuf, resp_len)
//! }
//! ```
//!
//! The handler body is where the profile lives: `segments` direct calls
//! into hot/cold code-block pools (IL1 behaviour), page/line touching
//! (dirty-line behaviour), and the response fill.
//!
//! ## Request wire format
//!
//! | bytes | field |
//! |---|---|
//! | 0 | opcode |
//! | 2..4 | `stack_copy_len` (u16 LE) — bytes `parse` copies to its 64-byte stack buffer |
//! | 4..6 | `glob_copy_len` (u16 LE) — bytes `ingest` copies to the 64-byte global buffer |
//! | 6..10 | `arg` (u32 LE) — pointer argument for opcodes 7/8 |
//! | 10.. | payload |

use indra_isa::{AluOp, Cond, Image, Instruction, Label, ProgramBuilder, Reg, Width};

use crate::{ServiceApp, WorkloadSpec};

/// Capacity of the receive buffer (and maximum request size).
pub const RX_CAPACITY: u32 = 2048;
/// Offset of the payload within a request.
pub const PAYLOAD_OFFSET: u32 = 10;
/// Size of the vulnerable stack/global buffers.
pub const VULN_BUF_LEN: u32 = 64;

/// Builds the service image for `app` at full (paper) scale.
#[must_use]
pub fn build_app(app: ServiceApp) -> Image {
    build_service(&WorkloadSpec::for_app(app))
}

/// Builds the service image for `app` shrunk by `factor` (tests).
#[must_use]
pub fn build_app_scaled(app: ServiceApp, factor: u32) -> Image {
    build_service(&WorkloadSpec::for_app(app).scaled_down(factor))
}

/// Generates the full service program for `spec`.
///
/// # Panics
///
/// Panics only on internal generator bugs (label bookkeeping); any
/// generated program assembles by construction.
#[must_use]
pub fn build_service(spec: &WorkloadSpec) -> Image {
    let mut b = ProgramBuilder::new(spec.name.clone());

    // ---- data ----------------------------------------------------------
    let rxbuf = b.data_zeroed("rxbuf", RX_CAPACITY);
    let txbuf = b.data_zeroed("txbuf", 1024);
    // Each flag word gets its own 64-byte cache line: compartment tagging
    // attributes writers per line, and the latch must not share a line
    // with the wild-write flag or `reqcopy` or provenance would alias.
    let latch = b.data_zeroed("latch", 64);
    let wildflag = b.data_zeroed("wildflag", 64);
    let reqcopy = b.data_zeroed("reqcopy", VULN_BUF_LEN);
    // `handlers` is emitted immediately after `reqcopy`: the adjacency IS
    // vulnerability 2 (an over-long ingest overwrites handlers[0]).
    // Handler labels are created now and bound when the functions are
    // emitted below.
    let h_labels: Vec<Label> = (0..4).map(|_| b.new_label()).collect();
    let handlers = b.data_fn_table("handlers", &h_labels);
    let workset = b.data_zeroed("workset", spec.pages_touched * 4096 + 4096);
    let mut logpath = Vec::from(format!("/var/log/{}", spec.name).as_bytes());
    logpath.push(0);
    let logpath = b.data_bytes("logpath", &logpath);

    // ---- code blocks -----------------------------------------------------
    // Page-padded cold pools come first so each block owns a code page
    // (the text base is page-aligned). `cold` thrashes a 32-entry CAM but
    // fits 64; `far` exceeds both.
    let cold: Vec<Label> = (0..spec.cold_blocks)
        .map(|i| emit_block(&mut b, &format!("cold_{i}"), spec.cold_block_insns, i + 1000, true))
        .collect();
    let far: Vec<Label> = (0..spec.far_blocks)
        .map(|i| emit_block(&mut b, &format!("far_{i}"), spec.cold_block_insns, i + 5000, true))
        .collect();
    let hot: Vec<Label> = (0..spec.hot_blocks)
        .map(|i| emit_block(&mut b, &format!("hot_{i}"), spec.block_insns, i, false))
        .collect();
    let utils: Vec<Label> = (0..4).map(|i| emit_util(&mut b, &format!("util_{i}"), i)).collect();

    // ---- touch: dirty one workset page ----------------------------------
    // a0 = page index; writes `lines_per_page` lines, `writes_per_line`
    // word stores each, plus one read per line.
    let touch = b.begin_func("touch", false);
    {
        b.inst(Instruction::AluImm { op: AluOp::Sll, rd: Reg::T0, rs1: Reg::A0, imm: 12 });
        b.alu(AluOp::Add, Reg::T0, Reg::T0, Reg::S2);
        b.li(Reg::T1, 0);
        b.li(Reg::T2, spec.lines_per_page as i32);
        let loop_top = b.here();
        let done = b.new_label();
        b.branch(Cond::Ge, Reg::T1, Reg::T2, done);
        b.inst(Instruction::AluImm { op: AluOp::Sll, rd: Reg::T3, rs1: Reg::T1, imm: 6 });
        b.alu(AluOp::Add, Reg::T3, Reg::T3, Reg::T0);
        for w in 0..spec.writes_per_line {
            b.sw(Reg::T1, Reg::T3, (w as i32 * 4) % 64);
        }
        b.lw(Reg::T4, Reg::T3, 0);
        b.addi(Reg::T1, Reg::T1, 1);
        b.jump(loop_top);
        b.bind(done);
        b.ret();
    }
    b.end_func();

    // ---- parse: VULN 1 (stack smash) -------------------------------------
    // a0 = request. Copies `stack_copy_len` payload bytes into a 64-byte
    // stack buffer; the saved return address sits at sp+64.
    let parse = b.begin_func("parse", false);
    {
        b.addi(Reg::SP, Reg::SP, -72);
        b.sw(Reg::RA, Reg::SP, 64);
        b.inst(Instruction::Load {
            width: Width::Half,
            signed: false,
            rd: Reg::T0,
            rs1: Reg::A0,
            offset: 2,
        });
        b.li(Reg::T1, 0);
        let loop_top = b.here();
        let done = b.new_label();
        b.branch(Cond::Ge, Reg::T1, Reg::T0, done);
        b.alu(AluOp::Add, Reg::T2, Reg::A0, Reg::T1);
        b.lbu(Reg::T3, Reg::T2, PAYLOAD_OFFSET as i32);
        b.alu(AluOp::Add, Reg::T4, Reg::SP, Reg::T1);
        b.sb(Reg::T3, Reg::T4, 0);
        b.addi(Reg::T1, Reg::T1, 1);
        b.jump(loop_top);
        b.bind(done);
        b.lw(Reg::T5, Reg::SP, 0); // consume the parsed header
        b.lw(Reg::RA, Reg::SP, 64); // possibly attacker-controlled
        b.addi(Reg::SP, Reg::SP, 72);
        b.ret();
    }
    b.end_func();

    // ---- ingest: VULN 2 (function-pointer table overwrite) ---------------
    let ingest = b.begin_func("ingest", false);
    {
        b.la_data(Reg::T0, reqcopy, 0);
        b.inst(Instruction::Load {
            width: Width::Half,
            signed: false,
            rd: Reg::T1,
            rs1: Reg::A0,
            offset: 4,
        });
        b.li(Reg::T2, 0);
        let loop_top = b.here();
        let done = b.new_label();
        b.branch(Cond::Ge, Reg::T2, Reg::T1, done);
        b.alu(AluOp::Add, Reg::T3, Reg::A0, Reg::T2);
        b.lbu(Reg::T4, Reg::T3, PAYLOAD_OFFSET as i32);
        b.alu(AluOp::Add, Reg::T5, Reg::T0, Reg::T2);
        b.sb(Reg::T4, Reg::T5, 0);
        b.addi(Reg::T2, Reg::T2, 1);
        b.jump(loop_top);
        b.bind(done);
        b.ret();
    }
    b.end_func();

    // ---- logfmt: VULN 3 (format-string-style arbitrary write) ------------
    // A naive "formatter" over the payload: byte 0xFF is a write
    // directive — the four bytes after it are an address and the four
    // after that a value, written wherever the "format string" says
    // (the %n analogue of §2.1's format-string attacks). `arg` carries
    // the format length.
    let logfmt = b.begin_func("logfmt", false);
    {
        b.lw(Reg::T1, Reg::A0, 6); // format length from the arg field
        b.li(Reg::T0, 0);
        let loop_top = b.here();
        let done = b.new_label();
        let next = b.new_label();
        b.branch(Cond::Ge, Reg::T0, Reg::T1, done);
        b.alu(AluOp::Add, Reg::T2, Reg::A0, Reg::T0);
        b.lbu(Reg::T3, Reg::T2, PAYLOAD_OFFSET as i32);
        b.li(Reg::T4, 0xFF);
        b.branch(Cond::Ne, Reg::T3, Reg::T4, next);
        b.lw(Reg::T5, Reg::T2, PAYLOAD_OFFSET as i32 + 1); // directive address
        b.lw(Reg::T6, Reg::T2, PAYLOAD_OFFSET as i32 + 5); // directive value
        b.sw(Reg::T6, Reg::T5, 0); // the arbitrary write
        b.addi(Reg::T0, Reg::T0, 8);
        b.bind(next);
        b.addi(Reg::T0, Reg::T0, 1);
        b.jump(loop_top);
        b.bind(done);
        b.ret();
    }
    b.end_func();

    // ---- handlers --------------------------------------------------------
    let touch_every = (spec.segments / spec.pages_touched.max(1)).max(1);
    for (h, &label) in h_labels.iter().enumerate() {
        b.bind(label);
        b.func_symbol_at(label, format!("handler_{h}"), false);
        b.addi(Reg::SP, Reg::SP, -8);
        b.sw(Reg::RA, Reg::SP, 0);
        let trigger_seg = spec.segments / 3;
        let mut cold_visits = 0u32;
        let mut near_i = h as u32 * 17;
        let mut far_i = h as u32 * 13;
        for seg in 0..spec.segments {
            if seg == trigger_seg {
                // Wild-write trigger point: if opcode 7 planted a pointer,
                // the store through it faults here, mid-request.
                let no_wild = b.new_label();
                b.la_data(Reg::T5, wildflag, 0);
                b.lw(Reg::T5, Reg::T5, 0);
                b.beqz(Reg::T5, no_wild);
                b.sw(Reg::T5, Reg::T5, 0);
                b.bind(no_wild);
            }
            if seg % spec.cold_every == 0 {
                // 50/50 near-cold / far-cold.
                if cold_visits.is_multiple_of(2) {
                    b.call(cold[(near_i % spec.cold_blocks) as usize]);
                    near_i += 1;
                } else {
                    b.call(far[(far_i % spec.far_blocks) as usize]);
                    far_i += 1;
                }
                cold_visits += 1;
            } else {
                let idx = (seg + h as u32 * 7) % spec.hot_blocks;
                b.call(hot[idx as usize]);
            }
            // hot glue
            b.addi(Reg::S5, Reg::S5, 1);
            b.alu(AluOp::Xor, Reg::S6, Reg::S6, Reg::S5);
            if seg % spec.burst_every == 0 {
                // A burst of leaf-helper calls: events arrive faster than
                // the monitor verifies them, exercising the FIFO's depth.
                for j in 0..spec.burst_calls {
                    b.call(utils[((seg + j) % 4) as usize]);
                }
            }
            if seg % touch_every == 0 {
                let page = seg / touch_every;
                if page < spec.pages_touched {
                    b.li(Reg::A0, page as i32);
                    b.call(touch);
                }
            }
            // Per-request log writes, spread through the request — each
            // syscall is an INDRA synchronization point (§3.2.5).
            if spec.file_writes > 0
                && seg % (spec.segments / (spec.file_writes + 1)).max(1) == 0
                && seg > 0
                && seg / (spec.segments / (spec.file_writes + 1)).max(1) <= spec.file_writes
            {
                b.mv(Reg::A0, Reg::S7);
                b.mv(Reg::A1, Reg::S1);
                b.li(Reg::A2, 48);
                b.syscall(indra_os::syscall::SYS_WRITE);
            }
        }
        // response fill: resp_len byte stores into txbuf
        b.li(Reg::T0, 0);
        b.li(Reg::T1, spec.resp_len as i32);
        let fill_top = b.here();
        let fill_done = b.new_label();
        b.branch(Cond::Ge, Reg::T0, Reg::T1, fill_done);
        b.alu(AluOp::Add, Reg::T2, Reg::S1, Reg::T0);
        b.sb(Reg::T0, Reg::T2, 0);
        b.addi(Reg::T0, Reg::T0, 1);
        b.jump(fill_top);
        b.bind(fill_done);
        b.lw(Reg::RA, Reg::SP, 0);
        b.addi(Reg::SP, Reg::SP, 8);
        b.ret();
    }

    // ---- main ------------------------------------------------------------
    let main = b.begin_func("main", true);
    {
        b.la_data(Reg::S0, rxbuf, 0);
        b.la_data(Reg::S1, txbuf, 0);
        b.la_data(Reg::S2, workset, 0);
        b.la_data(Reg::S3, handlers, 0);
        b.la_data(Reg::S4, latch, 0);
        // Open the daemon's log file once at startup; the fd lives in s7
        // (a pre-request-boundary resource, so it survives rollbacks).
        b.la_data(Reg::A0, logpath, 0);
        b.syscall(indra_os::syscall::SYS_OPEN);
        b.mv(Reg::S7, Reg::A0);
        let loop_top = b.here();
        // recv
        b.mv(Reg::A0, Reg::S0);
        b.li(Reg::A1, RX_CAPACITY as i32);
        b.syscall(indra_os::syscall::SYS_NET_RECV);
        // vulnerable parsing
        b.mv(Reg::A0, Reg::S0);
        b.call(parse);
        b.mv(Reg::A0, Reg::S0);
        b.call(ingest);
        // dormant latch: dereference a previously planted pointer
        let no_latch = b.new_label();
        b.lw(Reg::T1, Reg::S4, 0);
        b.beqz(Reg::T1, no_latch);
        b.lw(Reg::T2, Reg::T1, 0);
        b.bind(no_latch);
        // opcode 7: plant a wild pointer; the handler dereferences it a
        // third of the way through its work (real exploits corrupt after
        // substantial request processing, which is what makes rollback
        // interesting — Fig. 16 measures exactly this).
        let not_wild = b.new_label();
        b.lbu(Reg::T3, Reg::S0, 0);
        b.li(Reg::T4, 7);
        b.branch(Cond::Ne, Reg::T3, Reg::T4, not_wild);
        b.lw(Reg::T5, Reg::S0, 6);
        b.la_data(Reg::T4, wildflag, 0);
        b.sw(Reg::T5, Reg::T4, 0);
        b.bind(not_wild);
        // opcode 8: plant the dormant latch
        let not_dormant = b.new_label();
        b.li(Reg::T4, 8);
        b.branch(Cond::Ne, Reg::T3, Reg::T4, not_dormant);
        b.lw(Reg::T5, Reg::S0, 6);
        b.sw(Reg::T5, Reg::S4, 0);
        b.bind(not_dormant);
        // opcode 9: run the naive formatter over the payload (VULN 3)
        let not_fmt = b.new_label();
        b.li(Reg::T4, 9);
        b.branch(Cond::Ne, Reg::T3, Reg::T4, not_fmt);
        b.mv(Reg::A0, Reg::S0);
        b.call(logfmt);
        b.lbu(Reg::T3, Reg::S0, 0); // reload the opcode (clobbered)
        b.bind(not_fmt);
        // indirect dispatch through the (overwritable) handler table
        b.inst(Instruction::AluImm { op: AluOp::And, rd: Reg::T3, rs1: Reg::T3, imm: 3 });
        b.inst(Instruction::AluImm { op: AluOp::Sll, rd: Reg::T3, rs1: Reg::T3, imm: 2 });
        b.alu(AluOp::Add, Reg::T3, Reg::T3, Reg::S3);
        b.lw(Reg::T3, Reg::T3, 0);
        b.call_indirect(Reg::T3);
        // respond
        b.mv(Reg::A0, Reg::S1);
        b.li(Reg::A1, spec.resp_len as i32);
        b.syscall(indra_os::syscall::SYS_NET_SEND);
        b.jump(loop_top);
    }
    b.end_func();
    b.set_entry(main);

    let image = b.finish().expect("generated service must assemble");
    debug_assert_eq!(image.validate(), Ok(()));
    image
}

/// Emits one filler block: `insns` data-independent ALU instructions and a
/// return, parameterized by `salt` so blocks differ (no accidental
/// deduplication of fetch behaviour by branch predictors — and the listing
/// stays readable when disassembled). With `page_pad`, the block is padded
/// to a full 4 KiB page so each cold block occupies its own code page —
/// the unit the code-origin CAM filter tracks (Fig. 10).
fn emit_block(b: &mut ProgramBuilder, name: &str, insns: u32, salt: u32, page_pad: bool) -> Label {
    let label = b.begin_func(name.to_owned(), false);
    for k in 0..insns {
        match k % 5 {
            0 => b.addi(Reg::T6, Reg::T6, ((salt + k) & 0xFF) as i32),
            1 => b.alu(AluOp::Xor, Reg::T7, Reg::T7, Reg::T6),
            2 => b.alu(AluOp::Add, Reg::T8, Reg::T8, Reg::T7),
            3 => b.inst(Instruction::AluImm {
                op: AluOp::Sll,
                rd: Reg::T9,
                rs1: Reg::T8,
                imm: ((salt + k) % 13) as i32,
            }),
            _ => b.alu(AluOp::Or, Reg::T10, Reg::T10, Reg::T9),
        }
    }
    b.ret();
    b.end_func();
    if page_pad {
        while !b.len().is_multiple_of(1024) {
            b.nop();
        }
    }
    label
}

/// Emits one tiny leaf helper (strcmp/memcpy-style): burst calls to these
/// are what stress the trace FIFO (Fig. 12).
fn emit_util(b: &mut ProgramBuilder, name: &str, salt: u32) -> Label {
    let label = b.begin_func(name.to_owned(), false);
    for k in 0..8 {
        if k % 2 == 0 {
            b.addi(Reg::T6, Reg::T6, ((salt + k) & 0x3F) as i32);
        } else {
            b.alu(AluOp::Xor, Reg::T7, Reg::T7, Reg::T6);
        }
    }
    b.ret();
    b.end_func();
    label
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_build_and_validate() {
        for app in ServiceApp::ALL {
            let img = build_app_scaled(app, 20);
            assert_eq!(img.validate(), Ok(()), "{app}");
            assert_eq!(img.entry, img.addr_of("main").unwrap());
            for sym in ["rxbuf", "txbuf", "reqcopy", "handlers", "workset", "parse", "ingest"] {
                assert!(img.addr_of(sym).is_some(), "{app} missing {sym}");
            }
        }
    }

    #[test]
    fn handlers_table_adjacent_to_reqcopy() {
        let img = build_app_scaled(ServiceApp::Httpd, 20);
        let reqcopy = img.addr_of("reqcopy").unwrap();
        let handlers = img.addr_of("handlers").unwrap();
        assert_eq!(handlers, reqcopy + VULN_BUF_LEN, "vulnerability 2 requires adjacency");
    }

    #[test]
    fn handler_entries_are_valid_indirect_targets() {
        let img = build_app_scaled(ServiceApp::Bind, 10);
        for h in 0..4 {
            let addr = img.addr_of(&format!("handler_{h}")).unwrap();
            assert!(img.indirect_targets.contains(&addr));
        }
    }

    #[test]
    fn full_scale_images_have_paper_sized_requests() {
        // Text size sanity: imap's unrolled handlers are large but bounded.
        let img = build_app(ServiceApp::Bind);
        let text = &img.segments[0];
        assert!(text.data.len() > 100_000, "bind text {} bytes", text.data.len());
        assert!(text.data.len() < 16_000_000);
    }
}
