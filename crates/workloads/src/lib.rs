#![warn(missing_docs)]
//! # indra-workloads — the six evaluated network services
//!
//! The paper's testbed runs ftpd, httpd (Apache), bind, sendmail, imapd
//! and nfsd as real daemons. This crate generates their synthetic IR32
//! equivalents: one server skeleton (recv → parse → ingest → dispatch →
//! work → respond) instantiated with per-application profiles calibrated
//! to the paper's measurements — instructions per request (Fig. 13), IL1
//! miss rate (Fig. 9) and dirty-line density (Fig. 15).
//!
//! Every generated service carries two genuine vulnerabilities (a stack
//! buffer overflow in `parse` and a global-buffer overflow under the
//! handler function-pointer table in `ingest`) plus two buggy opcodes
//! (wild write, dormant pointer plant). The [`Attack`] generator produces
//! requests that really exploit them — the "attack" payloads contain
//! actual addresses and actual encoded IR32 shellcode.
//!
//! ```no_run
//! use indra_workloads::{build_app, ServiceApp, Traffic, Attack, UNMAPPED_ADDR};
//!
//! let image = build_app(ServiceApp::Httpd);
//! let script = Traffic::with_attacks(
//!     20, Attack::WildWrite { addr: UNMAPPED_ADDR }, 5, 42,
//! ).generate(&image);
//! assert!(script.iter().any(|r| r.malicious));
//! ```

mod attack;
mod gen;
mod spec;
mod traffic;

pub use attack::{
    attack_request, benign_request, detectable_attack_suite, encode_request,
    format_overscan_request, format_writes_request, injected_code_addr, shellcode_words,
    standard_attack_suite, Attack, UNMAPPED_ADDR,
};
pub use gen::{
    build_app, build_app_scaled, build_service, PAYLOAD_OFFSET, RX_CAPACITY, VULN_BUF_LEN,
};
pub use spec::{ServiceApp, WorkloadSpec};
pub use traffic::{OpenLoopTraffic, ScheduleCursor, ScriptedRequest, TimedRequest, Traffic};
