//! Workload specifications for the six evaluated network services.
//!
//! The paper drives real daemons (ftpd, httpd, bind, sendmail, imap,
//! nfsd); we generate synthetic IR32 servers whose *profiles* — the
//! properties that actually drive every figure — are calibrated to the
//! paper's measurements:
//!
//! * instructions per request (Fig. 13: bind ≈ 150 K … imap ≈ 2.3 M),
//!   set by `segments × block_insns`;
//! * IL1 miss rate (Fig. 9: ≈ 1–5 %), set by how often a request calls
//!   into the *cold* code pool (whose footprint exceeds the 16 KiB IL1)
//!   versus the resident *hot* pool;
//! * dirty-line behaviour (Fig. 15), set by `pages_touched ×
//!   lines_per_page` distinct lines per request and `writes_per_line`
//!   stores to each (the backup fraction is roughly `1/writes_per_line`).
//!
//! Every generated server shares one skeleton (recv → parse → ingest →
//! dispatch → work → respond) and carries the same two *real*
//! vulnerabilities the attack generator exploits: a length-unchecked copy
//! into a 64-byte stack buffer (stack smashing) and a length-unchecked
//! copy into a global buffer sitting directly below the handler
//! function-pointer table (pointer-table overwrite).

/// The six server applications of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceApp {
    /// File transfer daemon.
    Ftpd,
    /// Web server.
    Httpd,
    /// DNS daemon (short, write-dense requests — the paper's outlier).
    Bind,
    /// Mail transfer agent.
    Sendmail,
    /// IMAP mail server (the longest requests).
    Imap,
    /// Network file system daemon.
    Nfs,
}

impl ServiceApp {
    /// All six, in the paper's figure order.
    pub const ALL: [ServiceApp; 6] = [
        ServiceApp::Ftpd,
        ServiceApp::Httpd,
        ServiceApp::Bind,
        ServiceApp::Sendmail,
        ServiceApp::Imap,
        ServiceApp::Nfs,
    ];

    /// The daemon's conventional name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ServiceApp::Ftpd => "ftpd",
            ServiceApp::Httpd => "httpd",
            ServiceApp::Bind => "bind",
            ServiceApp::Sendmail => "sendmail",
            ServiceApp::Imap => "imap",
            ServiceApp::Nfs => "nfs",
        }
    }
}

impl std::fmt::Display for ServiceApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generator knobs for one synthetic service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Program name.
    pub name: String,
    /// Work segments per request (each one a direct call into a block).
    pub segments: u32,
    /// ALU instructions per code block.
    pub block_insns: u32,
    /// Blocks in the hot pool (sized to stay IL1-resident).
    pub hot_blocks: u32,
    /// Instructions per *cold* block (shorter than hot blocks: fewer IL1
    /// fills per page visit, so page transitions — the thing the CAM
    /// tracks — happen at a realistic rate).
    pub cold_block_insns: u32,
    /// Blocks in the near-cold pool: each block sits on its own page;
    /// near visits alternate 50/50 with far visits, so a near page's
    /// revisit distance in CAM inserts is ≈ `2 × cold_blocks` — sized to
    /// thrash a 32-entry CAM but (mostly) fit a 64-entry one (Fig. 10).
    pub cold_blocks: u32,
    /// Blocks in the far-cold pool (own page each, revisit distance far
    /// beyond both CAM sizes — these checks always reach the monitor).
    pub far_blocks: u32,
    /// Every `burst_every` segments, issue a rapid burst of
    /// `burst_calls` leaf-helper calls (strcmp/memcpy-style). Bursts are
    /// what stress the trace FIFO (Fig. 12).
    pub burst_every: u32,
    /// Calls per burst.
    pub burst_calls: u32,
    /// Every `cold_every`-th segment calls a cold block; the rest call
    /// hot ones. Smaller ⇒ higher IL1 miss rate.
    pub cold_every: u32,
    /// Distinct data pages written per request (paper: ~50).
    pub pages_touched: u32,
    /// Distinct lines dirtied per touched page.
    pub lines_per_page: u32,
    /// Stores issued per dirtied line (Fig. 15 fraction ≈ 1/this).
    pub writes_per_line: u32,
    /// Response length in bytes.
    pub resp_len: u32,
    /// Log-file writes per request (each one a syscall, hence an INDRA
    /// synchronization point — real daemons log per request, and these
    /// syncs are a visible share of Fig. 11's monitoring overhead).
    pub file_writes: u32,
}

impl WorkloadSpec {
    /// The calibrated spec for `app`.
    #[must_use]
    pub fn for_app(app: ServiceApp) -> WorkloadSpec {
        // Longer blocks space trace events out, modeling services that do
        // more streaming work between function calls (ftpd/imap) — this
        // is what keeps their monitoring overhead low in Fig. 11 despite
        // their long requests.
        let (segments, block_insns, cold_every, pages, lines, writes, resp, fw) = match app {
            //                       seg   blk  ce  pg  ln  wr  resp fw
            ServiceApp::Ftpd => (5_300, 170, 9, 40, 12, 6, 512, 4),
            ServiceApp::Httpd => (9_000, 120, 6, 48, 14, 4, 768, 3),
            ServiceApp::Bind => (1_400, 120, 2, 44, 26, 2, 128, 1),
            ServiceApp::Sendmail => (12_200, 120, 5, 52, 14, 4, 512, 4),
            ServiceApp::Imap => (12_100, 180, 13, 44, 10, 7, 1024, 3),
            ServiceApp::Nfs => (14_800, 120, 7, 56, 16, 5, 640, 5),
        };
        WorkloadSpec {
            name: app.name().to_owned(),
            segments,
            block_insns,
            hot_blocks: 20,
            cold_block_insns: 56,
            cold_blocks: 20,
            far_blocks: 84,
            burst_every: 30,
            burst_calls: 16,
            cold_every,
            pages_touched: pages,
            lines_per_page: lines,
            writes_per_line: writes,
            resp_len: resp,
            file_writes: fw,
        }
    }

    /// A uniformly shrunk spec for fast tests: divides the per-request
    /// work by `factor` while keeping the qualitative behaviour.
    #[must_use]
    pub fn scaled_down(mut self, factor: u32) -> WorkloadSpec {
        assert!(factor > 0, "factor must be positive");
        self.segments = (self.segments / factor).max(16);
        self.pages_touched = (self.pages_touched / factor).max(4);
        self
    }

    /// Rough instructions per request this spec will generate (block work
    /// plus store traffic; a sanity bound, not a promise).
    #[must_use]
    pub fn approx_insns_per_request(&self) -> u64 {
        let block_work = u64::from(self.segments) * u64::from(self.block_insns + 8);
        let touches = u64::from(self.pages_touched)
            * u64::from(self.lines_per_page)
            * u64::from(self.writes_per_line + 6);
        let resp = u64::from(self.resp_len) * 5;
        block_work + touches + resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_have_specs() {
        for app in ServiceApp::ALL {
            let spec = WorkloadSpec::for_app(app);
            assert_eq!(spec.name, app.name());
            assert!(spec.segments > 0);
            assert!(spec.cold_blocks > 0);
            // the hot pool must be IL1-resident; the page-padded cold
            // pools straddle the two CAM sizes of Fig. 10
            let hot_bytes = spec.hot_blocks * (spec.block_insns + 1) * 4;
            assert!(hot_bytes < 16 * 1024, "{app}: hot pool too big");
            // near revisit distance ≈ 2×cold_blocks inserts: > 32, < 64
            assert!(
                2 * spec.cold_blocks > 32 && 2 * spec.cold_blocks <= 64,
                "{app}: near pool must straddle the CAM sizes"
            );
            assert!(spec.far_blocks > 64, "{app}: far pool beyond both CAMs");
        }
    }

    #[test]
    fn fig13_ordering_preserved() {
        // bind must be the shortest request; imap the longest (Fig. 13).
        let insns: Vec<(ServiceApp, u64)> = ServiceApp::ALL
            .iter()
            .map(|&a| (a, WorkloadSpec::for_app(a).approx_insns_per_request()))
            .collect();
        let bind = insns.iter().find(|(a, _)| *a == ServiceApp::Bind).unwrap().1;
        let imap = insns.iter().find(|(a, _)| *a == ServiceApp::Imap).unwrap().1;
        for (app, n) in &insns {
            if *app != ServiceApp::Bind {
                assert!(*n > bind, "{app} must exceed bind's request length");
            }
            if *app != ServiceApp::Imap {
                assert!(*n < imap, "{app} must be below imap's request length");
            }
        }
        assert!(bind > 80_000, "bind ≈ 150K instructions");
        assert!(imap > 1_500_000, "imap ≈ 2.3M instructions");
    }

    #[test]
    fn fig9_knob_ordering() {
        // bind calls cold code most often, imap least (Fig. 9 ordering).
        let ce: Vec<u32> =
            ServiceApp::ALL.iter().map(|&a| WorkloadSpec::for_app(a).cold_every).collect();
        let bind = WorkloadSpec::for_app(ServiceApp::Bind).cold_every;
        let imap = WorkloadSpec::for_app(ServiceApp::Imap).cold_every;
        assert_eq!(bind, *ce.iter().min().unwrap());
        assert_eq!(imap, *ce.iter().max().unwrap());
    }

    #[test]
    fn scaling_shrinks() {
        let spec = WorkloadSpec::for_app(ServiceApp::Imap);
        let small = spec.clone().scaled_down(50);
        assert!(small.approx_insns_per_request() < spec.approx_insns_per_request() / 10);
    }

    #[test]
    fn bind_is_write_dense() {
        // Fig. 15: bind backs up the highest fraction of its stores.
        let bind = WorkloadSpec::for_app(ServiceApp::Bind);
        let imap = WorkloadSpec::for_app(ServiceApp::Imap);
        assert!(bind.writes_per_line < imap.writes_per_line);
    }
}
