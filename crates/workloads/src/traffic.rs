//! Request traffic scripting — the analogue of the paper's client
//! scripts (wget loops, ftp upload/download scripts, mail senders).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use indra_isa::Image;

use crate::{attack_request, benign_request, Attack};

/// One scripted request with its ground-truth tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedRequest {
    /// Wire bytes.
    pub data: Vec<u8>,
    /// Ground truth: is this an exploit?
    pub malicious: bool,
}

/// A deterministic traffic script.
#[derive(Debug, Clone)]
pub struct Traffic {
    /// Number of benign requests.
    pub benign: u32,
    /// Inject `attack` after every `attack_every` benign requests
    /// (`None` = clean run).
    pub attack_every: Option<u32>,
    /// The attack to inject.
    pub attack: Option<Attack>,
    /// RNG seed (scripts are reproducible).
    pub seed: u64,
}

impl Traffic {
    /// A clean, all-benign script.
    #[must_use]
    pub fn benign(n: u32, seed: u64) -> Traffic {
        Traffic { benign: n, attack_every: None, attack: None, seed }
    }

    /// A script interleaving `attack` after every `every` benign requests.
    #[must_use]
    pub fn with_attacks(n: u32, attack: Attack, every: u32, seed: u64) -> Traffic {
        Traffic { benign: n, attack_every: Some(every), attack: Some(attack), seed }
    }

    /// Materializes the request sequence against `image`.
    #[must_use]
    pub fn generate(&self, image: &Image) -> Vec<ScriptedRequest> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        for i in 0..self.benign {
            let opcode = rng.gen_range(0..4u8);
            let fill = rng.gen::<u8>();
            out.push(ScriptedRequest { data: benign_request(opcode, fill), malicious: false });
            if let (Some(every), Some(attack)) = (self.attack_every, self.attack) {
                if every > 0 && (i + 1) % every == 0 {
                    out.push(ScriptedRequest {
                        data: attack_request(attack, image),
                        malicious: true,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_app_scaled, ServiceApp};

    #[test]
    fn benign_script_is_clean_and_deterministic() {
        let img = build_app_scaled(ServiceApp::Ftpd, 20);
        let a = Traffic::benign(10, 42).generate(&img);
        let b = Traffic::benign(10, 42).generate(&img);
        assert_eq!(a, b, "same seed, same script");
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|r| !r.malicious));
        let c = Traffic::benign(10, 43).generate(&img);
        assert_ne!(a, c, "different seed, different script");
    }

    #[test]
    fn attacks_interleave_at_the_requested_rate() {
        let img = build_app_scaled(ServiceApp::Ftpd, 20);
        let script = Traffic::with_attacks(
            6,
            Attack::WildWrite { addr: crate::UNMAPPED_ADDR },
            2,
            1,
        )
        .generate(&img);
        assert_eq!(script.len(), 9, "6 benign + 3 attacks");
        let flags: Vec<bool> = script.iter().map(|r| r.malicious).collect();
        assert_eq!(flags, [false, false, true, false, false, true, false, false, true]);
    }
}
