//! Request traffic scripting — the analogue of the paper's client
//! scripts (wget loops, ftp upload/download scripts, mail senders).
//!
//! Two generators live here:
//!
//! * [`Traffic`] — the original closed scripts used by the figure
//!   experiments: `n` benign requests with an attack interleaved at a
//!   fixed cadence.
//! * [`OpenLoopTraffic`] — the fleet harness's open-loop arrival
//!   process: requests arrive on their own clock (uniformly jittered
//!   inter-arrival gaps), independent of when the service finishes the
//!   previous one, with a configurable benign/attack mix drawn over an
//!   arbitrary set of [`Attack`] variants. Open-loop is the right model
//!   for "millions of users": real clients do not wait for each other.

use indra_isa::Image;
use indra_rng::Rng;

use crate::{attack_request, benign_request, Attack};

/// One scripted request with its ground-truth tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedRequest {
    /// Wire bytes.
    pub data: Vec<u8>,
    /// Ground truth: is this an exploit?
    pub malicious: bool,
}

/// A deterministic traffic script.
#[derive(Debug, Clone)]
pub struct Traffic {
    /// Number of benign requests.
    pub benign: u32,
    /// Inject `attack` after every `attack_every` benign requests
    /// (`None` = clean run).
    pub attack_every: Option<u32>,
    /// The attack to inject.
    pub attack: Option<Attack>,
    /// RNG seed (scripts are reproducible).
    pub seed: u64,
}

impl Traffic {
    /// A clean, all-benign script.
    #[must_use]
    pub fn benign(n: u32, seed: u64) -> Traffic {
        Traffic { benign: n, attack_every: None, attack: None, seed }
    }

    /// A script interleaving `attack` after every `every` benign requests.
    #[must_use]
    pub fn with_attacks(n: u32, attack: Attack, every: u32, seed: u64) -> Traffic {
        Traffic { benign: n, attack_every: Some(every), attack: Some(attack), seed }
    }

    /// Materializes the request sequence against `image`.
    #[must_use]
    pub fn generate(&self, image: &Image) -> Vec<ScriptedRequest> {
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        for i in 0..self.benign {
            let opcode = rng.range_u32(0, 4) as u8;
            let fill = rng.gen_u8();
            out.push(ScriptedRequest { data: benign_request(opcode, fill), malicious: false });
            if let (Some(every), Some(attack)) = (self.attack_every, self.attack) {
                if every > 0 && (i + 1) % every == 0 {
                    out.push(ScriptedRequest {
                        data: attack_request(attack, image),
                        malicious: true,
                    });
                }
            }
        }
        out
    }
}

/// One request of an open-loop schedule: wire bytes, ground truth, and
/// the client-side cycle at which it arrives at the service's inbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedRequest {
    /// Wire bytes.
    pub data: Vec<u8>,
    /// Ground truth: is this an exploit?
    pub malicious: bool,
    /// Which attack produced it (None for benign traffic).
    pub attack: Option<Attack>,
    /// Arrival time in resurrectee cycles since the schedule's start.
    pub arrival_cycle: u64,
}

/// An open-loop arrival process: `total` requests arriving at a mean
/// inter-arrival gap, each independently an attack with probability
/// `attack_per_mille`/1000, the attack drawn uniformly from `attacks`.
///
/// The schedule is a pure function of the configuration (notably `seed`),
/// so a fleet shard replaying it under any thread interleaving sees
/// byte-identical traffic — the determinism contract the fleet
/// aggregation tests pin down.
#[derive(Debug, Clone)]
pub struct OpenLoopTraffic {
    /// Total requests in the schedule (benign + attacks).
    pub total: u32,
    /// Per-request attack probability in per-mille (0 = clean run,
    /// 1000 = every request is an exploit).
    pub attack_per_mille: u32,
    /// The attack mix to draw from (ignored when `attack_per_mille` is 0;
    /// must be non-empty otherwise).
    pub attacks: Vec<Attack>,
    /// Mean inter-arrival gap in resurrectee cycles; actual gaps are
    /// uniform in `[gap/2, 3*gap/2)`.
    pub mean_gap_cycles: u64,
    /// Schedule seed.
    pub seed: u64,
}

impl OpenLoopTraffic {
    /// A clean open-loop schedule.
    #[must_use]
    pub fn benign(total: u32, mean_gap_cycles: u64, seed: u64) -> OpenLoopTraffic {
        OpenLoopTraffic { total, attack_per_mille: 0, attacks: Vec::new(), mean_gap_cycles, seed }
    }

    /// A schedule mixing attacks in at `per_mille`/1000 probability.
    #[must_use]
    pub fn with_attack_mix(
        total: u32,
        attacks: Vec<Attack>,
        per_mille: u32,
        mean_gap_cycles: u64,
        seed: u64,
    ) -> OpenLoopTraffic {
        OpenLoopTraffic { total, attack_per_mille: per_mille, attacks, mean_gap_cycles, seed }
    }

    /// Materializes the arrival schedule against `image`.
    ///
    /// # Panics
    ///
    /// Panics when an attack mix is requested with an empty attack set.
    #[must_use]
    pub fn generate(&self, image: &Image) -> Vec<TimedRequest> {
        assert!(
            self.attack_per_mille == 0 || !self.attacks.is_empty(),
            "attack mix requested with no attack variants"
        );
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.total as usize);
        let mut clock = 0u64;
        for _ in 0..self.total {
            let gap = if self.mean_gap_cycles == 0 {
                0
            } else {
                let half = (self.mean_gap_cycles / 2).max(1);
                rng.range_u64(half, self.mean_gap_cycles + half + 1)
            };
            clock += gap;
            let is_attack = self.attack_per_mille > 0 && rng.ratio(self.attack_per_mille, 1000);
            if is_attack {
                let attack = *rng.pick(&self.attacks);
                out.push(TimedRequest {
                    data: attack_request(attack, image),
                    malicious: true,
                    attack: Some(attack),
                    arrival_cycle: clock,
                });
            } else {
                let opcode = rng.range_u32(0, 4) as u8;
                let fill = rng.gen_u8();
                out.push(TimedRequest {
                    data: benign_request(opcode, fill),
                    malicious: false,
                    attack: None,
                    arrival_cycle: clock,
                });
            }
        }
        out
    }
}

/// A replay cursor over an open-loop schedule that can deterministically
/// skip quarantined entries.
///
/// The fleet's revival path replays a shard's schedule from a durable
/// cursor; when the supervisor has quarantined a poison request, the
/// replay must consume that entry *without delivering it* — and must do
/// so identically on every replay, or the revived trajectory would
/// diverge from the one that will be checkpointed next. The cursor
/// makes that contract explicit: `consumed()` counts every entry that
/// has left the schedule (delivered *or* skipped), which is exactly the
/// number a progress blob persists and [`ScheduleCursor::seek`] restores.
#[derive(Debug, Clone)]
pub struct ScheduleCursor {
    reqs: Vec<TimedRequest>,
    pos: usize,
    skip: Vec<u64>,
}

impl ScheduleCursor {
    /// Wraps a materialized schedule. `skip` lists the quarantined
    /// schedule indices (order and duplicates don't matter).
    #[must_use]
    pub fn new(reqs: Vec<TimedRequest>, skip: Vec<u64>) -> ScheduleCursor {
        ScheduleCursor { reqs, pos: 0, skip }
    }

    /// Jumps past the first `consumed` entries (delivered or skipped) —
    /// the resume path for a cursor persisted at a checkpoint.
    pub fn seek(&mut self, consumed: u64) {
        self.pos = (consumed as usize).min(self.reqs.len());
    }

    /// Entries consumed so far, skipped ones included — the durable
    /// cursor value.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.pos as u64
    }

    /// Whether the head entry is quarantined.
    #[must_use]
    pub fn head_quarantined(&self) -> bool {
        self.pos < self.reqs.len() && self.skip.contains(&(self.pos as u64))
    }

    /// Consumes the head entry if it is quarantined, returning its
    /// schedule index so the caller can record the skip. Call in a loop
    /// before [`ScheduleCursor::peek`]: several quarantined entries may
    /// be adjacent.
    pub fn skip_quarantined_head(&mut self) -> Option<u64> {
        if self.head_quarantined() {
            let idx = self.pos as u64;
            self.pos += 1;
            Some(idx)
        } else {
            None
        }
    }

    /// The next deliverable entry (callers must drain
    /// [`ScheduleCursor::skip_quarantined_head`] first — a quarantined
    /// head is still visible here).
    #[must_use]
    pub fn peek(&self) -> Option<&TimedRequest> {
        self.reqs.get(self.pos)
    }

    /// Consumes and returns the head entry.
    pub fn pop(&mut self) -> Option<TimedRequest> {
        let r = self.reqs.get(self.pos).cloned();
        if r.is_some() {
            self.pos += 1;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_app_scaled, detectable_attack_suite, ServiceApp};

    #[test]
    fn benign_script_is_clean_and_deterministic() {
        let img = build_app_scaled(ServiceApp::Ftpd, 20);
        let a = Traffic::benign(10, 42).generate(&img);
        let b = Traffic::benign(10, 42).generate(&img);
        assert_eq!(a, b, "same seed, same script");
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|r| !r.malicious));
        let c = Traffic::benign(10, 43).generate(&img);
        assert_ne!(a, c, "different seed, different script");
    }

    #[test]
    fn attacks_interleave_at_the_requested_rate() {
        let img = build_app_scaled(ServiceApp::Ftpd, 20);
        let script =
            Traffic::with_attacks(6, Attack::WildWrite { addr: crate::UNMAPPED_ADDR }, 2, 1)
                .generate(&img);
        assert_eq!(script.len(), 9, "6 benign + 3 attacks");
        let flags: Vec<bool> = script.iter().map(|r| r.malicious).collect();
        assert_eq!(flags, [false, false, true, false, false, true, false, false, true]);
    }

    #[test]
    fn open_loop_schedule_is_deterministic_and_monotone() {
        let img = build_app_scaled(ServiceApp::Httpd, 20);
        let mix = detectable_attack_suite(&img);
        let spec = OpenLoopTraffic::with_attack_mix(200, mix, 150, 10_000, 7);
        let a = spec.generate(&img);
        let b = spec.generate(&img);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].arrival_cycle <= w[1].arrival_cycle));
        let attacks = a.iter().filter(|r| r.malicious).count();
        assert!((10..60).contains(&attacks), "15% mix gave {attacks}/200 attacks");
        assert!(a.iter().filter(|r| r.malicious).all(|r| r.attack.is_some()));
    }

    #[test]
    fn open_loop_gaps_follow_the_mean() {
        let img = build_app_scaled(ServiceApp::Bind, 20);
        let spec = OpenLoopTraffic::benign(100, 1_000, 3);
        let script = spec.generate(&img);
        let span = script.last().unwrap().arrival_cycle;
        assert!(
            (60_000..140_000).contains(&span),
            "100 arrivals at mean gap 1000 span {span} cycles"
        );
        let zero_gap = OpenLoopTraffic::benign(10, 0, 3).generate(&img);
        assert!(zero_gap.iter().all(|r| r.arrival_cycle == 0), "gap 0 = all at once");
    }

    #[test]
    fn cursor_skips_quarantined_entries_and_counts_them_as_consumed() {
        let img = build_app_scaled(ServiceApp::Httpd, 20);
        let schedule = OpenLoopTraffic::benign(6, 100, 9).generate(&img);
        let mut c = ScheduleCursor::new(schedule.clone(), vec![1, 2, 5]);

        assert_eq!(c.pop().unwrap(), schedule[0]);
        assert!(c.head_quarantined());
        assert_eq!(c.skip_quarantined_head(), Some(1));
        assert_eq!(c.skip_quarantined_head(), Some(2), "adjacent quarantines drain in order");
        assert_eq!(c.skip_quarantined_head(), None);
        assert_eq!(c.consumed(), 3, "skips count as consumed");
        assert_eq!(c.peek(), Some(&schedule[3]));
        assert_eq!(c.pop().unwrap(), schedule[3]);
        assert_eq!(c.pop().unwrap(), schedule[4]);
        assert_eq!(c.skip_quarantined_head(), Some(5), "trailing quarantine still drains");
        assert!(c.peek().is_none());
        assert!(c.pop().is_none());
        assert_eq!(c.consumed(), 6);
    }

    #[test]
    fn cursor_seek_replays_from_a_durable_cursor() {
        let img = build_app_scaled(ServiceApp::Httpd, 20);
        let schedule = OpenLoopTraffic::benign(5, 100, 9).generate(&img);
        let mut a = ScheduleCursor::new(schedule.clone(), vec![3]);
        // Consume 0..4 (3 skipped), remember the cursor, then replay.
        a.pop();
        a.pop();
        a.pop();
        assert_eq!(a.skip_quarantined_head(), Some(3));
        let durable = a.consumed();
        let mut b = ScheduleCursor::new(schedule.clone(), vec![3]);
        b.seek(durable);
        assert_eq!(b.peek(), a.peek(), "replay resumes at the identical entry");
        assert_eq!(b.pop().unwrap(), schedule[4]);
        // Seeking past the end clamps instead of panicking.
        let mut c = ScheduleCursor::new(schedule, vec![]);
        c.seek(99);
        assert!(c.peek().is_none());
    }
}
