//! The full §4.1 story on one service: every attack class of Table 2
//! launched against the synthetic Apache (httpd), with a narrated
//! timeline — detection mechanism, recovery level, and proof that the
//! service keeps answering honest clients.
//!
//! Includes the negative control: the same code-injection payload with
//! INDRA disabled takes over the machine.
//!
//! ```text
//! cargo run --release --example attack_recovery
//! ```

use indra::core::{AvailabilityReport, IndraSystem, RunState, SchemeKind, SystemConfig};
use indra::isa::{disassemble, Reg};
use indra::workloads::{
    attack_request, benign_request, build_app_scaled, injected_code_addr, shellcode_words, Attack,
    ServiceApp, UNMAPPED_ADDR,
};

fn main() {
    let image = build_app_scaled(ServiceApp::Httpd, 10);
    let handler0 = image.addr_of("handler_0").unwrap();

    println!("== target: synthetic httpd ==");
    println!("vulnerable stack buffer in `parse` at {:#x}", image.addr_of("parse").unwrap());
    println!(
        "handler fn-pointer table at {:#x}, right after the overflowable `reqcopy`",
        image.addr_of("handlers").unwrap()
    );

    let attacks: [(&str, Attack); 5] = [
        ("stack smash (return-address overwrite)", Attack::StackSmash { target: handler0 + 8 }),
        ("code injection via smashed return", Attack::CodeInjection),
        ("code injection via hijacked fn-pointer", Attack::InjectedHandler),
        ("fn-pointer overwrite to wild address", Attack::HandlerHijack { target: UNMAPPED_ADDR }),
        ("wild-write crash (DoS bug)", Attack::WildWrite { addr: UNMAPPED_ADDR }),
    ];

    for (name, attack) in attacks {
        println!("\n-- attack: {name} --");
        let mut sys = IndraSystem::new(SystemConfig::default());
        sys.deploy(&image).unwrap();
        sys.push_request(benign_request(0, 0x30), false);
        sys.push_request(attack_request(attack, &image), true);
        sys.push_request(benign_request(1, 0x31), false);
        sys.push_request(benign_request(2, 0x32), false);
        let state = sys.run(200_000_000);
        assert_ne!(state, RunState::BudgetExhausted);

        for d in &sys.report().detections {
            println!("   detected: {:?} -> {:?} recovery", d.cause, d.level);
        }
        for v in sys.monitor().violations() {
            println!("   audit: {:?} pc={:#x} target={:#x}", v.kind, v.pc, v.addr);
        }
        println!(
            "   benign served: {}/3   false positives: {}",
            sys.report().benign_served,
            sys.report().false_positives()
        );
    }

    // The dormant attack: needs the hybrid's macro checkpoint.
    println!("\n-- attack: dormant corruption (defeats micro recovery) --");
    let mut cfg = SystemConfig::default();
    cfg.hybrid.macro_interval = 2;
    cfg.hybrid.failure_threshold = 2;
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(&image).unwrap();
    for i in 0..3u8 {
        sys.push_request(benign_request(i, 0x40 + i), false);
    }
    sys.push_request(attack_request(Attack::Dormant { addr: UNMAPPED_ADDR }, &image), true);
    for i in 0..5u8 {
        sys.push_request(benign_request(i, 0x50 + i), false);
    }
    sys.run(400_000_000);
    let h = sys.hybrid().stats();
    println!(
        "   micro recoveries (failed to help): {}   macro recoveries: {}",
        h.micro_recoveries, h.macro_recoveries
    );
    let availability = AvailabilityReport::from_run(sys.report(), 8);
    println!("   availability summary:");
    for line in availability.to_string().lines() {
        println!("     {line}");
    }
    assert!(h.macro_recoveries >= 1);

    // Negative control — what the attacker gets WITHOUT INDRA.
    println!("\n-- negative control: same injection, monitoring disabled --");
    let code_at = injected_code_addr(&image);
    println!("   injected payload disassembles to:");
    for line in disassemble(code_at, &shellcode_words()) {
        println!("   {line}");
    }
    let cfg =
        SystemConfig { monitoring: false, scheme: SchemeKind::None, ..SystemConfig::default() };
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(&image).unwrap();
    sys.push_request(attack_request(Attack::InjectedHandler, &image), true);
    sys.push_request(benign_request(0, 0x66), false);
    let state = sys.run(200_000_000);
    println!(
        "   outcome: {:?}, service exit code = {:#x} (attacker-chosen!)",
        state,
        sys.machine().core(1).reg(Reg::A0)
    );
    println!("   clients served after the attack: {}", sys.report().benign_served);
    assert_eq!(state, RunState::Halted);
    assert_eq!(sys.machine().core(1).reg(Reg::A0), 0x31337);
}
