//! Table 3 / Figs. 14 & 16 in miniature: the four memory backup schemes
//! side by side on the same service and the same attack mix, showing why
//! the paper's delta engine wins on both the backup and the recovery
//! axis.
//!
//! ```text
//! cargo run --release --example checkpoint_comparison
//! ```

use indra::core::SchemeKind;
use indra::workloads::{Attack, ServiceApp, UNMAPPED_ADDR};
use indra_bench::{run, RunOptions};

fn main() {
    let app = ServiceApp::Bind; // the paper's outlier: short, write-dense requests
    println!("service: {app} (short requests, many dirty lines — the stress case)\n");

    // Baseline: no backup hardware, no monitoring.
    let mut base = RunOptions::quick(app);
    base.scale = 4;
    base.requests = 10;
    base.monitoring = false;
    base.scheme = SchemeKind::None;
    let baseline = run(&base);
    println!("baseline (no INDRA): {:>10.0} cycles/request\n", baseline.cycles_per_benign);

    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>13} {:>10}",
        "scheme", "slowdown", "line copies", "page copies", "log entries", "rollbacks"
    );
    for scheme in [
        SchemeKind::SoftwareCheckpoint,
        SchemeKind::VirtualCheckpoint,
        SchemeKind::UndoLog,
        SchemeKind::Delta,
    ] {
        let mut o = base.clone();
        o.monitoring = true;
        o.scheme = scheme;
        // rollback every other request, the Fig. 16 stress pattern
        o.attack = Some((Attack::WildWrite { addr: UNMAPPED_ADDR }, 2));
        let m = run(&o);
        println!(
            "{:<22} {:>9.2}x {:>12} {:>12} {:>13} {:>10}",
            format!("{scheme:?}"),
            m.cycles_per_benign / baseline.cycles_per_benign,
            m.scheme.line_copies,
            m.scheme.page_copies,
            m.scheme.log_entries,
            m.scheme.rollbacks,
        );
    }

    println!(
        "\nthe delta engine copies only first-touched lines (no page copies, no log),\n\
         and its rollback marks bitvectors instead of moving memory — both Table 3\n\
         axes come out 'fast'."
    );
}
