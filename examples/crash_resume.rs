//! Kill a fleet mid-flight, then revive it from disk.
//!
//! The durable-checkpoint subsystem (`indra-persist`) freezes each
//! shard's *complete* system state — pages, caches, TLBs, DRAM row
//! state, OS tables, monitor shadow stacks, backup-scheme bitvectors —
//! to a base snapshot plus a write-ahead delta journal. Because the
//! capture is total and every shard is deterministic, a resumed fleet
//! picks up cycle-for-cycle where the killed one died: the final stats
//! are byte-identical to a run that was never interrupted.
//!
//! Run with: `cargo run --release --example crash_resume`

use indra::fleet::{resume_fleet, run_fleet, FleetConfig};

fn main() {
    let dir = std::env::temp_dir().join(format!("indra-crash-resume-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let base = FleetConfig {
        shards: 3,
        requests_per_shard: 12,
        scale: 30,
        attack_per_mille: 200,
        seed: 0xBEEF_CAFE,
        ..FleetConfig::default()
    };

    // The reference: the same fleet, left alone to finish.
    println!("reference run (uninterrupted)...");
    let reference = run_fleet(&base);

    // Checkpoint every 3 served requests; every shard is killed dead
    // right after its second checkpoint — a simulated `kill -9`.
    println!("checkpointed run, killed mid-flight...");
    let killed = run_fleet(&FleetConfig {
        checkpoint_every: 3,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        halt_after_checkpoints: Some(2),
        ..base.clone()
    });
    println!(
        "  killed at {}/{} requests served; checkpoints on disk in {}",
        killed.stats.served,
        reference.stats.served,
        dir.display()
    );

    // Revival: everything needed is in the checkpoint directory.
    println!("resuming from disk...");
    let revived = resume_fleet(&dir).expect("resume");

    println!("\nreference: {}", reference.stats);
    println!("\nrevived:   {}", revived.stats);

    assert!(killed.stats.served < reference.stats.served, "the kill must interrupt real work");
    assert_eq!(
        revived.stats.to_json(),
        reference.stats.to_json(),
        "revived stats must be byte-identical to the uninterrupted run"
    );
    println!("\nrevived fleet is byte-identical to the uninterrupted run");

    let _ = std::fs::remove_dir_all(&dir);
}
