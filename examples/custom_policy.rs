//! The monitor's software upgradability (§6: INDRA "allows for future
//! advanced detection and recovery techniques to be studied and
//! deployed"): a site-defined inspection policy — syscalls may only be
//! issued from the binary's known syscall sites — catches injected
//! shellcode even with every built-in inspection switched off.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use indra::core::{
    FailureCause, IndraSystem, MonitorConfig, RunState, SyscallSitePolicy, SystemConfig,
    ViolationKind,
};
use indra::isa::{disassemble_image, Instruction};
use indra::workloads::{attack_request, benign_request, build_app_scaled, Attack, ServiceApp};

fn main() {
    let image = build_app_scaled(ServiceApp::Httpd, 15);

    // Harvest the binary's legitimate syscall sites from its own listing —
    // exactly what the OS process manager would hand the resurrector.
    let syscall_sites: Vec<u32> = disassemble_image(&image)
        .iter()
        .filter(|l| matches!(l.inst, Some(Instruction::Syscall { .. })))
        .map(|l| l.addr)
        .collect();
    println!("service has {} legitimate syscall sites", syscall_sites.len());

    // Deliberately hobble the built-in inspections: this run relies on
    // the *custom* policy alone.
    let cfg = SystemConfig {
        monitor: MonitorConfig {
            check_call_return: false,
            check_code_origin: false,
            check_control_transfer: false,
            ..MonitorConfig::default()
        },
        ..SystemConfig::default()
    };
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(&image).unwrap();
    sys.add_monitor_policy(Box::new(SyscallSitePolicy::new(syscall_sites)));

    sys.push_request(benign_request(0, 0x51), false);
    // Injected shellcode calls exit() from inside the request buffer — a
    // syscall site no legitimate binary has.
    sys.push_request(attack_request(Attack::InjectedHandler, &image), true);
    sys.push_request(benign_request(1, 0x52), false);

    let state = sys.run(300_000_000);
    assert_ne!(state, RunState::BudgetExhausted);

    for d in &sys.report().detections {
        println!("detected: {:?} (malicious: {})", d.cause, d.was_malicious);
    }
    for v in sys.monitor().violations() {
        println!("audit: {:?} — rogue syscall at {:#x}", v.kind, v.addr);
    }
    println!("benign served: {}/2", sys.report().benign_served);

    assert_eq!(sys.report().benign_served, 2);
    assert!(sys
        .report()
        .detections
        .iter()
        .any(|d| d.cause == FailureCause::Violation(ViolationKind::Custom)));
    println!("\nthe site-defined policy caught the shellcode's rogue syscall —\nno silicon change, just new monitor software.");
}
