//! The Fig. 2 topology at full breadth: one resurrector monitoring
//! several resurrectee cores, each hosting a different network service.
//! An exploit against one service is detected and rolled back while the
//! neighbours keep serving — the consolidation story of §2.3.
//!
//! ```text
//! cargo run --release --example fleet
//! ```

use indra::core::{IndraSystem, RunState, SystemConfig};
use indra::sim::CoreRole;
use indra::workloads::{
    attack_request, benign_request, build_app_scaled, Attack, ServiceApp, UNMAPPED_ADDR,
};

fn main() {
    // A quad-core: one resurrector, three resurrectees.
    let mut cfg = SystemConfig::default();
    cfg.machine.cores = vec![
        CoreRole::Resurrector,
        CoreRole::Resurrectee,
        CoreRole::Resurrectee,
        CoreRole::Resurrectee,
    ];
    let mut sys = IndraSystem::new(cfg);

    let apps = [ServiceApp::Httpd, ServiceApp::Bind, ServiceApp::Ftpd];
    let mut images = Vec::new();
    for app in apps {
        let image = build_app_scaled(app, 20);
        let pid = sys.deploy(&image).expect("deploy");
        println!("core {}: {} (pid {pid})", sys.service_cores().last().unwrap(), app);
        images.push(image);
    }

    // Traffic for everyone; the DNS server (core 2) also gets an exploit.
    for i in 0..4u8 {
        sys.push_request_to(1, benign_request(i, 0x10 + i), false);
        sys.push_request_to(2, benign_request(i, 0x20 + i), false);
        sys.push_request_to(3, benign_request(i, 0x30 + i), false);
    }
    let smash = Attack::StackSmash { target: images[1].addr_of("handler_0").unwrap() + 8 };
    sys.push_request_to(2, attack_request(smash, &images[1]), true);
    let wild = Attack::WildWrite { addr: UNMAPPED_ADDR };
    sys.push_request_to(2, attack_request(wild, &images[1]), true);

    let state = sys.run(600_000_000);
    assert_eq!(state, RunState::Idle);

    println!("\none resurrector monitored {} services concurrently:", apps.len());
    for (i, app) in apps.iter().enumerate() {
        let core = i + 1;
        let served = sys.report().samples.iter().filter(|s| s.core == core && !s.malicious).count();
        let detections = sys.report().detections.iter().filter(|d| d.core == core).count();
        println!("  core {core} ({app}): {served} benign served, {detections} attacks survived");
    }
    println!(
        "\nmonitor: {} events verified, {} violations; FIFO high-water {} of {}",
        sys.monitor().stats().events,
        sys.monitor().stats().violations,
        sys.machine().fifo().stats().high_water,
        sys.machine().fifo().capacity(),
    );

    assert_eq!(sys.report().benign_served, 12, "every honest client on every core served");
    assert_eq!(sys.report().detections.len(), 2, "both attacks on the DNS core were caught");
    assert!(sys.report().detections.iter().all(|d| d.core == 2));
    println!("\nboth exploits hit the DNS core; httpd and ftpd never noticed.");
}
