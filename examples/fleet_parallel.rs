//! A six-application INDRA fleet surviving an attack wave.
//!
//! One shard per evaluated service (ftpd, httpd, bind, sendmail, imap,
//! nfsd), each a complete resurrector/resurrectee cell on its own OS
//! thread — the paper's Fig. 2 consolidation topology stretched across
//! a host multicore. Every shard's open-loop client mix hides real
//! exploit payloads (1 in 4 requests), and periodic hardware faults are
//! injected on top; the fleet report shows every attack detected, every
//! fault survived, and honest clients still served.
//!
//! Run with: `cargo run --release --example fleet_parallel`

use indra::fleet::{run_fleet, FleetConfig};

fn main() {
    let cfg = FleetConfig {
        shards: 6, // one per service, round-robin
        requests_per_shard: 24,
        scale: 20,             // 1/20th paper work-scale for a fast demo
        attack_per_mille: 250, // a genuine attack wave: 1 in 4 requests
        fault_every: Some(10), // and hardware faults on top
        seed: 0xC0FFEE,
        ..FleetConfig::default()
    };
    println!(
        "launching a {}-shard fleet ({} requests per shard, 1-in-4 attack mix)...\n",
        cfg.shards, cfg.requests_per_shard
    );

    let report = run_fleet(&cfg);
    let s = &report.stats;

    println!("{s}\n");
    println!("per shard:");
    for shard in &s.per_shard {
        println!(
            "  #{} {:<9} served {:>3}/{:<3} attacks {:>2} detected {:>2} faults {} ratio {:.3} {}",
            shard.shard,
            shard.app.name(),
            shard.served,
            shard.benign_sent + shard.attacks_sent,
            shard.attacks_sent,
            shard.true_detections,
            shard.faults_injected,
            shard.benign_service_ratio,
            if shard.completed { "ok" } else { "INCOMPLETE" },
        );
    }
    println!(
        "\nwall clock: {:.2}s ({:.0} req/s across {} threads)",
        report.wall_seconds, report.wall_req_per_sec, cfg.shards
    );

    assert!(s.attacks_sent > 0, "the wave must contain attacks");
    assert_eq!(s.true_detections, s.attacks_sent, "every injected attack must be detected");
    assert!(s.faults_injected > 0, "faults must have been injected");
    assert!(
        s.benign_service_ratio > 0.95,
        "honest clients must keep being served (got {:.3})",
        s.benign_service_ratio
    );
    println!("\nfleet survived: all attacks detected, all faults recovered, benign service intact");
}
