//! Hardware insulation (§3.1): the memory watchdog keeps a compromised
//! resurrectee away from the resurrector's memory, and the same silicon
//! reboots into a symmetric machine when protection is not wanted
//! (§2.3.4 reconfigurability).
//!
//! ```text
//! cargo run --example insulation
//! ```

use indra::isa::assemble;
use indra::mem::PAGE_SHIFT;
use indra::sim::{CoreStep, Machine, MachineConfig, Pte};

/// A program that scans physical memory through a window the "attacker"
/// remaps — the move a compromised kernel would try against the monitor.
const SNOOP: &str = "
main:
    la  t0, window
    lw  a0, 0(t0)       # read through the remapped page
    halt
.data
window: .space 4096
";

fn main() {
    // --- asymmetric boot: the watchdog is armed -------------------------
    let mut m = Machine::new(MachineConfig::default());
    m.boot_asymmetric();
    println!("asymmetric boot: core 0 = resurrector (privileged), core 1 = resurrectee");

    let image = assemble("snoop", SNOOP).unwrap();
    m.create_space(10);
    m.load_image(10, &image).unwrap();
    m.core_mut(1).set_asid(10);
    m.core_mut(1).set_pc(image.entry);
    m.core_mut(1).set_reg(indra::isa::Reg::SP, image.initial_sp);

    // The "compromised kernel" remaps the service's data window onto
    // physical frame 0 — resurrector territory (the RTS pool).
    let window_vpn = image.addr_of("window").unwrap() >> PAGE_SHIFT;
    m.space_mut(10)
        .unwrap()
        .map(window_vpn, Pte { ppn: 0, read: true, write: true, execute: false });
    println!("remapped the service's window onto physical frame 0 (RTS memory)");

    let mut outcome = CoreStep::Executed;
    for _ in 0..1000 {
        outcome = m.step_core_simple(1);
        if !matches!(outcome, CoreStep::Executed) {
            break;
        }
    }
    println!("resurrectee outcome: {outcome:?}");
    assert!(
        matches!(outcome, CoreStep::Fault(indra::sim::Fault::Watchdog { .. })),
        "the watchdog must block the access"
    );
    println!(
        "-> the hardware watchdog blocked the read; checks so far: {}, violations: {}",
        m.watchdog().stats().checks,
        m.watchdog().stats().violations
    );

    // The resurrector itself reads the same frame freely.
    m.core_mut(0).set_asid(10);
    m.core_mut(0).set_pc(image.entry);
    m.core_mut(0).set_reg(indra::isa::Reg::SP, image.initial_sp);
    let mut outcome = CoreStep::Executed;
    for _ in 0..1000 {
        outcome = m.step_core_simple(0);
        if !matches!(outcome, CoreStep::Executed) {
            break;
        }
    }
    assert_eq!(outcome, CoreStep::Halted);
    println!("-> the resurrector ran the same program to completion (it sees all memory)\n");

    // --- symmetric boot: protection off, same silicon -------------------
    let mut m = Machine::new(MachineConfig::symmetric(2));
    m.boot_symmetric();
    m.create_space(10);
    m.load_image(10, &image).unwrap();
    m.space_mut(10)
        .unwrap()
        .map(window_vpn, Pte { ppn: 0, read: true, write: true, execute: false });
    m.core_mut(1).set_asid(10);
    m.core_mut(1).set_pc(image.entry);
    m.core_mut(1).set_reg(indra::isa::Reg::SP, image.initial_sp);
    let mut outcome = CoreStep::Executed;
    for _ in 0..1000 {
        outcome = m.step_core_simple(1);
        if !matches!(outcome, CoreStep::Executed) {
            break;
        }
    }
    assert_eq!(outcome, CoreStep::Halted);
    println!("symmetric boot: the same access sails through (no watchdog, no monitoring)");
    println!("-> reconfigurability: one BIOS switch selects protection or raw throughput");
}
