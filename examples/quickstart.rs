//! Quickstart: boot an INDRA machine, deploy a tiny service written in
//! IR32 assembly, serve requests, survive a stack-smashing exploit.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use indra::core::{IndraSystem, SystemConfig};
use indra::isa::assemble;

fn main() {
    // 1. A network service, written directly in IR32 assembly. It echoes
    //    requests back — but copies the request into a 32-byte stack
    //    buffer using a length field taken from the request itself.
    //    (Bytes 0-1 of each request: payload length; payload follows.)
    let image = assemble(
        "echo",
        r#"
        main:
            la   s0, rxbuf
            la   s1, txbuf
        serve:
            mv   a0, s0
            li   a1, 256
            syscall 1            # net_recv -> a0 = length
            mv   a0, s0
            call handle
            mv   a0, s1
            li   a1, 16
            syscall 2            # net_send
            j    serve

        handle:                  # the vulnerable parser
            addi sp, sp, -40     # 32-byte buffer, saved ra at sp+32
            sw   ra, 32(sp)
            lhu  t0, 0(a0)       # attacker-controlled copy length!
            li   t1, 0
        copy:
            bge  t1, t0, done
            add  t2, a0, t1
            lbu  t3, 2(t2)
            add  t4, sp, t1
            sb   t3, 0(t4)
            addi t1, t1, 1
            j    copy
        done:
            lw   t5, 0(sp)
            sw   t5, 0(s1)       # "process" the request
            lw   ra, 32(sp)      # may have been overwritten...
            addi sp, sp, 40
            ret

        .data
        rxbuf: .space 256
        txbuf: .space 16
        "#,
    )
    .expect("service assembles");

    // 2. Boot the asymmetric dual-core machine: core 0 is the
    //    resurrector (monitor), core 1 the resurrectee running our
    //    service, with the delta backup engine armed.
    let mut sys = IndraSystem::new(SystemConfig::default());
    sys.deploy(&image).expect("deploy service");
    println!("deployed `{}` at {:#x} on the resurrectee core", image.name, image.entry);

    // 3. Well-behaved clients.
    for payload in [&b"hello"[..], b"indra", b"world"] {
        let mut req = vec![payload.len() as u8, 0];
        req.extend_from_slice(payload);
        sys.push_request(req, false);
    }

    // 4. The attacker: declares a 36-byte payload so the copy overruns
    //    the 32-byte buffer and overwrites the saved return address.
    let mut exploit = vec![36u8, 0];
    exploit.extend_from_slice(&[0x41; 32]); // filler
    exploit.extend_from_slice(&0xDEAD_BEE0u32.to_le_bytes()); // new return address
    sys.push_request(exploit, true);

    // 5. One more honest client behind the attacker.
    sys.push_request(vec![4, 0, b'l', b'a', b's', b't'], false);

    // 6. Run until the queue drains.
    sys.run(10_000_000);

    // 7. What happened?
    let report = sys.report();
    println!("\nserved {} requests ({} benign)", report.served, report.benign_served);
    for d in &report.detections {
        println!(
            "detected {:?} on request {:?} (malicious: {}) -> {:?} recovery",
            d.cause, d.request_id, d.was_malicious, d.level
        );
    }
    for v in sys.monitor().violations() {
        println!("monitor audit: {:?} at pc {:#x}, rogue target {:#x}", v.kind, v.pc, v.addr);
    }
    assert_eq!(report.benign_served, 4, "every honest client was served");
    assert_eq!(report.true_detections(), 1, "the exploit was caught");
    println!("\nall honest clients served; the exploit was detected and rolled back.");
}
