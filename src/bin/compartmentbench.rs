//! compartmentbench — per-request compartment rewind-and-discard
//! benchmark.
//!
//! Measures what the compartment machinery buys across Table 2's
//! attack families: for each family, an interleaved benign/attack
//! request stream is served twice — compartments off (global-rollback
//! baseline) and on — and the run reports
//!
//! * **benign requests lost**: benign requests that never produced a
//!   response because a recovery episode swallowed them. With
//!   compartments on, a detection discards only the guilty
//!   compartment's pages and arena and requeues the innocent in-flight
//!   request, so this should be zero.
//! * **compartment discards**: recovery episodes that attributed the
//!   fault to a sealed compartment and surgically discarded it.
//! * **checkpoint volume**: WAL bytes/pages written by a fixed-cadence
//!   checkpoint discipline against a scratch store (host-side
//!   observation; the sim stats never see it).
//!
//! Results go to `results/BENCH_compartment.json`.
//! `--assert-discards-min N` / `--assert-benign-lost-max N` turn the
//! run into a self-checking smoke test over the compartments-on leg.

use std::time::Instant;

use indra_core::json::{json_array, JsonObject};
use indra_core::{IndraSystem, RunState, SchemeKind, SystemConfig};
use indra_persist::{CheckpointReceipt, SnapshotStore};
use indra_workloads::{
    attack_request, benign_request, build_app_scaled, Attack, ServiceApp, UNMAPPED_ADDR,
};

struct Args {
    quick: bool,
    out: String,
    assert_discards_min: Option<u64>,
    assert_benign_lost_max: Option<u64>,
}

const USAGE: &str = "\
compartmentbench — per-request compartment rewind-and-discard benchmark

USAGE: compartmentbench [--quick] [--out PATH]
                        [--assert-discards-min N]
                        [--assert-benign-lost-max N]

Serves an interleaved benign/attack stream per Table 2 attack family,
compartments off vs on, and reports benign requests lost, compartment
discards and checkpoint WAL volume. Writes
results/BENCH_compartment.json. The assert flags exit non-zero when
the compartments-on leg discards fewer than N compartments or loses
more than N benign requests.";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: "results/BENCH_compartment.json".into(),
        assert_discards_min: None,
        assert_benign_lost_max: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--assert-discards-min" => {
                let v = it.next().ok_or("--assert-discards-min needs a value")?;
                args.assert_discards_min =
                    Some(v.parse().map_err(|e| format!("--assert-discards-min: {e}"))?);
            }
            "--assert-benign-lost-max" => {
                let v = it.next().ok_or("--assert-benign-lost-max needs a value")?;
                args.assert_benign_lost_max =
                    Some(v.parse().map_err(|e| format!("--assert-benign-lost-max: {e}"))?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Table 2's attack families, each paired with its payload builder.
fn families(image: &indra_isa::Image) -> Vec<(&'static str, Attack)> {
    let mid_function = image.addr_of("handler_0").expect("service image has handler_0") + 8;
    vec![
        ("stack_smash", Attack::StackSmash { target: mid_function }),
        ("code_injection", Attack::CodeInjection),
        ("handler_hijack", Attack::HandlerHijack { target: mid_function }),
        ("injected_handler", Attack::InjectedHandler),
        ("wild_write", Attack::WildWrite { addr: UNMAPPED_ADDR }),
        ("format_string", Attack::FormatString { value: mid_function }),
        ("dormant", Attack::Dormant { addr: UNMAPPED_ADDR }),
    ]
}

/// One leg's measured outcome.
struct Outcome {
    benign_sent: u64,
    benign_served: u64,
    attacks_sent: u64,
    detections: u64,
    discards: u64,
    retried: u64,
    wal: CheckpointReceipt,
    wall_seconds: f64,
}

impl Outcome {
    fn benign_lost(&self) -> u64 {
        self.benign_sent.saturating_sub(self.benign_served)
    }
}

/// Serves `requests` requests (every 4th an attack of `attack`'s
/// family) through one INDRA cell, checkpointing every 4 requests to a
/// scratch store, and collapses the run report into an [`Outcome`].
fn run_family(attack: Attack, requests: u32, compartments: bool, tag: &str) -> Outcome {
    let cfg = SystemConfig {
        scheme: SchemeKind::Delta,
        monitoring: true,
        compartments,
        ..SystemConfig::default()
    };
    let mut sys = IndraSystem::new(cfg);
    let image = build_app_scaled(ServiceApp::Httpd, 40);
    sys.deploy(&image).expect("compartmentbench deploy");

    let dir =
        std::env::temp_dir().join(format!("indra-compartmentbench-{}-{tag}", std::process::id()));
    let store = SnapshotStore::create(&dir).expect("scratch checkpoint store");
    let mut writer = store.shard_writer(0).expect("scratch shard writer");
    let mut wal = CheckpointReceipt::default();

    let started = Instant::now();
    let mut benign_sent = 0u64;
    let mut attacks_sent = 0u64;
    for i in 0..requests {
        // Position 1 of every group of 4 is the attack; for the
        // dormant family the following benign request is the victim.
        let malicious = i % 4 == 1;
        let data = if malicious {
            attacks_sent += 1;
            attack_request(attack, &image)
        } else {
            benign_sent += 1;
            benign_request(i as u8, 0x20 + (i % 64) as u8)
        };
        sys.push_request(data, malicious);
        let mut budget = 4_000_000u64;
        loop {
            match sys.run(20_000) {
                RunState::Idle | RunState::Halted => break,
                RunState::BudgetExhausted => {
                    budget = budget.saturating_sub(20_000);
                    if budget == 0 {
                        break;
                    }
                }
            }
        }
        let _ = sys.take_responses();
        if (i + 1) % 4 == 0 {
            let receipt = writer
                .checkpoint(&sys.freeze(), &u64::from(i + 1).to_le_bytes())
                .expect("scratch checkpoint");
            wal.absorb(receipt);
        }
    }
    let report = sys.report();
    let out = Outcome {
        benign_sent,
        benign_served: report.benign_served,
        attacks_sent,
        detections: report.detections.len() as u64,
        discards: report.detections.iter().filter(|d| d.discarded.is_some()).count() as u64,
        retried: report.detections.iter().filter(|d| d.retried).count() as u64,
        wal,
        wall_seconds: started.elapsed().as_secs_f64(),
    };
    let _ = std::fs::remove_dir_all(&dir);
    out
}

fn leg_json(o: &Outcome) -> String {
    JsonObject::new()
        .u64("benign_sent", o.benign_sent)
        .u64("benign_served", o.benign_served)
        .u64("benign_lost", o.benign_lost())
        .u64("attacks_sent", o.attacks_sent)
        .u64("detections", o.detections)
        .u64("discards", o.discards)
        .u64("retried", o.retried)
        .u64("wal_bytes", o.wal.bytes)
        .u64("wal_pages", o.wal.pages)
        .f64("wall_seconds", o.wall_seconds)
        .finish()
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let requests = if args.quick { 12 } else { 32 };
    let image = build_app_scaled(ServiceApp::Httpd, 40);

    println!("compartmentbench: {} requests/family, attacks every 4th request", requests);
    println!(
        "{:>16} {:>4} {:>7} {:>7} {:>6} {:>7} {:>8} {:>7} {:>10} {:>8}",
        "family",
        "cmp",
        "benign",
        "served",
        "lost",
        "detect",
        "discard",
        "retried",
        "wal KB",
        "wal pg"
    );

    let mut rows = Vec::new();
    let mut lost_on = 0u64;
    let mut lost_off = 0u64;
    let mut discards_on = 0u64;
    let mut detections_on = 0u64;
    for (name, attack) in families(&image) {
        let off = run_family(attack, requests, false, &format!("{name}-off"));
        let on = run_family(attack, requests, true, &format!("{name}-on"));
        for (label, o) in [("off", &off), ("on", &on)] {
            println!(
                "{:>16} {:>4} {:>7} {:>7} {:>6} {:>7} {:>8} {:>7} {:>10.1} {:>8}",
                name,
                label,
                o.benign_sent,
                o.benign_served,
                o.benign_lost(),
                o.detections,
                o.discards,
                o.retried,
                o.wal.bytes as f64 / 1024.0,
                o.wal.pages,
            );
        }
        lost_off += off.benign_lost();
        lost_on += on.benign_lost();
        discards_on += on.discards;
        detections_on += on.detections;
        rows.push(
            JsonObject::new()
                .str("family", name)
                .raw("off", &leg_json(&off))
                .raw("on", &leg_json(&on))
                .finish(),
        );
    }

    let lost_per_detection_on =
        if detections_on > 0 { lost_on as f64 / detections_on as f64 } else { 0.0 };
    println!(
        "totals: benign lost off {lost_off}, on {lost_on} \
         ({lost_per_detection_on:.3}/detection), compartment discards {discards_on}"
    );

    let json = JsonObject::new()
        .str("bench", "compartment")
        .bool("quick", args.quick)
        .u64("requests_per_family", u64::from(requests))
        .raw("families", &json_array(rows))
        .u64("benign_lost_off", lost_off)
        .u64("benign_lost_on", lost_on)
        .f64("benign_lost_per_detection_on", lost_per_detection_on)
        .u64("discards_on", discards_on)
        .finish();
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&args.out, format!("{json}\n")).expect("write results json");
    println!("wrote {}", args.out);

    if let Some(min) = args.assert_discards_min {
        if discards_on < min {
            eprintln!("compartmentbench: {discards_on} discards, below floor {min}");
            std::process::exit(1);
        }
    }
    if let Some(max) = args.assert_benign_lost_max {
        if lost_on > max {
            eprintln!("compartmentbench: lost {lost_on} benign requests, above cap {max}");
            std::process::exit(1);
        }
    }
}
