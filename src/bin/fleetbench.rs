//! `fleetbench` — shard-count scaling sweep over the parallel fleet
//! executor. All logic lives in [`indra_fleet::sweep`]; this wrapper
//! installs the graceful-shutdown signal handlers and exists so `cargo
//! run --release --bin fleetbench` works from the workspace root.

use std::process::ExitCode;
use std::sync::atomic::Ordering;

use indra_fleet::sweep::{parse_args, run_sweep, USAGE};
use indra_serve::install_shutdown_handler;

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(mut args) => {
            // SIGINT/SIGTERM drain every shard at the next run-slice
            // boundary and flush a final checkpoint, so an interrupted
            // checkpointing run resumes byte-identically.
            let shutdown = install_shutdown_handler();
            args.base.shutdown = Some(shutdown);
            match run_sweep(&args) {
                Ok(_) => {
                    if shutdown.load(Ordering::SeqCst) {
                        if let Some(store) = &args.base.store_dir {
                            eprintln!("fleetbench: interrupted; resume with --resume {store}");
                        } else {
                            eprintln!("fleetbench: interrupted (no --store, nothing to resume)");
                        }
                        return ExitCode::from(130);
                    }
                    ExitCode::SUCCESS
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(msg) if msg == USAGE => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
