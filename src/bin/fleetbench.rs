//! `fleetbench` — shard-count scaling sweep over the parallel fleet
//! executor. All logic lives in [`indra_fleet::sweep`]; this wrapper
//! only exists so `cargo run --release --bin fleetbench` works from the
//! workspace root.

use std::process::ExitCode;

use indra_fleet::sweep::{parse_args, run_sweep, USAGE};

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(args) => match run_sweep(&args) {
            Ok(_) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) if msg == USAGE => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
