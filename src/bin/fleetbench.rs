//! `fleetbench` — shard-count scaling sweep over the parallel fleet
//! executor. All logic lives in [`indra_fleet::sweep`]; this wrapper
//! installs the graceful-shutdown signal handlers, dispatches the
//! replica modes (`--replicas`, `--rejuvenate-every`,
//! `--replica-bench` — the voting executor lives above `indra-fleet`
//! in `indra-replica`) and exists so `cargo run --release --bin
//! fleetbench` works from the workspace root.

use std::process::ExitCode;
use std::sync::atomic::Ordering;

use indra_fleet::sweep::{parse_args, run_sweep, SweepArgs, USAGE};
use indra_fleet::{ChaosConfig, FleetConfig};
use indra_replica::{replica_bench_json, run_fleet_replicated, ReplicaOptions};
use indra_serve::install_shutdown_handler;

fn main() -> ExitCode {
    match parse_args(std::env::args().skip(1)) {
        Ok(mut args) => {
            // SIGINT/SIGTERM drain every shard at the next run-slice
            // boundary and flush a final checkpoint, so an interrupted
            // checkpointing run resumes byte-identically.
            let shutdown = install_shutdown_handler();
            args.base.shutdown = Some(shutdown);
            let outcome = if args.replica_bench {
                run_replica_bench(&args)
            } else if args.replicas > 1 || args.rejuvenate_every.is_some() {
                run_replicated(&args)
            } else {
                run_sweep(&args).map(|_| ())
            };
            match outcome {
                Ok(()) => {
                    if shutdown.load(Ordering::SeqCst) {
                        if let Some(store) = &args.base.store_dir {
                            eprintln!("fleetbench: interrupted; resume with --resume {store}");
                        } else {
                            eprintln!("fleetbench: interrupted (no --store, nothing to resume)");
                        }
                        return ExitCode::from(130);
                    }
                    ExitCode::SUCCESS
                }
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(msg) if msg == USAGE => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

/// One replicated run at the largest `--shards` point, with the chosen
/// chaos profile's stealth leg (host-level chaos belongs to the
/// supervisor, not the voting executor).
fn run_replicated(args: &SweepArgs) -> Result<(), String> {
    let shards = *args.shard_counts.last().expect("parse_args rejects empty --shards");
    let cfg = FleetConfig { shards, ..args.base.clone() };
    let chaos = match &args.chaos {
        Some(name) => ChaosConfig::profile(name).map_err(|e| format!("--chaos: {e}"))?,
        None => ChaosConfig::off(),
    };
    let opts =
        ReplicaOptions { replicas: args.replicas, rejuvenate_every: args.rejuvenate_every, chaos };
    let report = run_fleet_replicated(&cfg, &opts)?;
    let s = &report.stats;
    let sup = report.supervision.as_ref().expect("replicated runs carry supervision stats");
    println!(
        "replicated fleet: {} shards x {} replicas, served {}, benign {:.1}%, \
         detections {}, divergences {} ({} masked), rejuvenations {}, wall {:.2}s",
        s.shards,
        args.replicas,
        s.served,
        s.benign_service_ratio * 100.0,
        s.true_detections,
        sup.divergences,
        sup.divergent_masked,
        sup.rejuvenations,
        report.wall_seconds,
    );
    if args.json {
        println!("{}", report.to_json());
    }
    // --chaos-out in a replicated run saves the deterministic stats
    // alone, so CI can `cmp` a stealth run against a chaos-free one.
    if let Some(path) = &args.chaos_out {
        std::fs::write(path, report.stats.to_json().as_bytes())
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(min) = args.assert_divergences_min {
        if sup.divergences < min {
            return Err(format!(
                "assertion failed: {} divergences caught < required minimum {min}",
                sup.divergences
            ));
        }
    }
    if let Some(min) = args.assert_revivals_min {
        let revived = sup.divergent_masked + sup.rejuvenations;
        if revived < min {
            return Err(format!(
                "assertion failed: {revived} replica revivals < required minimum {min}"
            ));
        }
    }
    if let Some(min) = args.assert_availability_min {
        if sup.availability < min {
            return Err(format!(
                "assertion failed: availability {:.4} < required minimum {min}",
                sup.availability
            ));
        }
    }
    Ok(())
}

/// The K=1/2/3 detection/overhead sweep; writes `--chaos-out PATH` or
/// `results/BENCH_replica.json`.
fn run_replica_bench(args: &SweepArgs) -> Result<(), String> {
    let doc = replica_bench_json(args.quick)?;
    let path = args.chaos_out.clone().unwrap_or_else(|| "results/BENCH_replica.json".to_string());
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{path}: {e}"))?;
        }
    }
    std::fs::write(&path, doc.as_bytes()).map_err(|e| format!("{path}: {e}"))?;
    println!("replica bench: wrote {path}");
    Ok(())
}
