//! `fleetd` — the INDRA fleet service daemon. All logic lives in
//! [`indra_serve`]; this wrapper parses flags, installs the signal
//! handlers and runs the serve-or-replay loop so `cargo run --release
//! --bin fleetd` works from the workspace root.

use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

use indra::serve::{
    install_shutdown_handler, parse_fleetd_args, replay_state_dir, Daemon, FleetdArgs, FLEETD_USAGE,
};

fn main() -> ExitCode {
    match parse_fleetd_args(std::env::args().skip(1)) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) if msg == FLEETD_USAGE => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: FleetdArgs) -> Result<(), String> {
    if let Some(dir) = &args.replay {
        let outcome = replay_state_dir(dir).map_err(|e| format!("fleetd: replay: {e}"))?;
        let json = outcome.stats.to_json();
        println!("{json}");
        if let Some(path) = &args.out {
            std::fs::write(path, json + "\n").map_err(|e| format!("fleetd: write --out: {e}"))?;
        }
        eprintln!(
            "fleetd: replayed {} requests across {} shards",
            outcome.requests_replayed, outcome.shards
        );
        return Ok(());
    }

    let shutdown = install_shutdown_handler();
    let daemon = Daemon::start(args.serve.clone()).map_err(|e| format!("fleetd: {e}"))?;
    println!("fleetd listening on {}", daemon.addr());
    while !shutdown.load(Ordering::SeqCst) && !daemon.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("fleetd: draining shards and flushing final checkpoints");
    let report = daemon.stop().map_err(|e| format!("fleetd: {e}"))?;
    let json = report.stats.to_json();
    let out = args.out.clone().unwrap_or_else(|| args.serve.state_dir.join("FLEET_stats.json"));
    std::fs::write(&out, json.clone() + "\n")
        .map_err(|e| format!("fleetd: write {}: {e}", out.display()))?;
    println!("{json}");
    eprintln!(
        "fleetd: served {} requests ({} rejected at admission) in {:.1}s -> {}",
        report.stats.served,
        report.rejected,
        report.wall_seconds,
        out.display()
    );
    Ok(())
}
