//! `ir32` — the IR32 toolchain driver.
//!
//! A small assembler/disassembler/runner for the reproduction's ISA, so
//! programs can be developed against the simulated machine directly:
//!
//! ```text
//! ir32 asm prog.s                 assemble; print sections and symbols
//! ir32 disasm prog.s              assemble and show the full listing
//! ir32 run prog.s                 run to completion on the kernel-lite
//! ir32 run prog.s --req hello     queue request(s) for net_recv servers
//! ir32 trace prog.s               run under the INDRA monitor and dump
//!                                 the first trace events + verdicts
//! ir32 analyze prog.s             static CFG recovery + CFI policy report
//! ir32 lint --app httpd --json    same report, nonzero exit on findings;
//!                                 images also come from --app/--fixture
//! ir32 gadgets --app httpd        CFI-aware gadget catalog + attack
//!                                 surface score under the tightened policy
//! ```
//!
//! Exit codes for `lint` and `gadgets`: 0 clean, 1 findings present,
//! 2 usage error, 3 analysis error (unreadable, unassemblable, unknown
//! app/fixture). `analyze` reports without judging: findings exit 0.

use std::process::ExitCode;

use indra::analyze::{analyze_image, enumerate_gadgets, fixtures, PolicyReport, SurfaceReport};
use indra::core::json::{json_array, JsonObject};
use indra::isa::{assemble, disassemble_image, Image};
use indra::os::{Os, SyscallEffect};
use indra::sim::{CoreStep, Machine, MachineConfig, TraceEvent};
use indra::workloads::{build_app_scaled, ServiceApp};

const USAGE: &str = "usage: ir32 <asm|disasm|run|trace> <file.s> [--req DATA]...\n       ir32 <analyze|lint|gadgets> (<file.s> | --app NAME [--scale N] | --fixture NAME) [--json]";

/// Findings present (`lint`/`gadgets` only).
const EXIT_FINDINGS: u8 = 1;
/// Bad invocation: unknown command/option, missing value or input.
const EXIT_USAGE: u8 = 2;
/// The input could not be analyzed: unreadable file, assembly error,
/// unknown app or fixture.
const EXIT_ANALYSIS: u8 = 3;

/// Rejects unknown `--flags` (previously silently ignored) and flags
/// missing their value. Positional arguments pass through.
fn check_flags(
    cmd: &str,
    args: &[String],
    with_value: &[&str],
    bare: &[&str],
) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with("--") {
            if with_value.contains(&a) {
                if i + 1 >= args.len() {
                    return Err(format!("ir32 {cmd}: {a} needs a value\n{USAGE}"));
                }
                i += 2;
                continue;
            }
            if !bare.contains(&a) {
                return Err(format!("ir32 {cmd}: unknown option {a}\n{USAGE}"));
            }
        }
        i += 1;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let analysis_cmd = cmd == "analyze" || cmd == "lint" || cmd == "gadgets";
    let flag_check = if analysis_cmd {
        check_flags(cmd, rest, &["--app", "--scale", "--fixture"], &["--json"])
    } else {
        check_flags(cmd, rest, &["--req"], &[])
    };
    if let Err(msg) = flag_check {
        eprintln!("{msg}");
        return ExitCode::from(EXIT_USAGE);
    }
    if analysis_cmd {
        return cmd_analyze(cmd, rest);
    }
    let Some(path) = rest.first() else {
        eprintln!("ir32 {cmd}: missing input file");
        return ExitCode::from(EXIT_USAGE);
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ir32: cannot read {path}: {e}");
            return ExitCode::from(EXIT_ANALYSIS);
        }
    };
    let name = path.rsplit('/').next().unwrap_or(path).trim_end_matches(".s");
    let image = match assemble(name, &source) {
        Ok(img) => img,
        Err(e) => {
            eprintln!("ir32: {path}: {e}");
            return ExitCode::from(EXIT_ANALYSIS);
        }
    };

    let requests: Vec<Vec<u8>> =
        rest.windows(2).filter(|w| w[0] == "--req").map(|w| w[1].clone().into_bytes()).collect();

    match cmd.as_str() {
        "asm" => cmd_asm(&image),
        "disasm" => cmd_disasm(&image),
        "run" => cmd_run(&image, &requests),
        "trace" => cmd_trace(&image, &requests),
        other => {
            eprintln!("ir32: unknown command `{other}`");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

/// Resolves the image for `analyze`/`lint`/`gadgets`: a `.s` file on
/// disk, a built-in workload (`--app NAME [--scale N]`), or an analyzer
/// fixture (`--fixture NAME`). The error carries the exit code: missing
/// input entirely is a usage error, everything else an analysis error.
fn analysis_image(args: &[String]) -> Result<Image, (u8, String)> {
    let fail = |msg: String| (EXIT_ANALYSIS, msg);
    let flag = |name: &str| args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone());
    if let Some(name) = flag("--app") {
        let app =
            ServiceApp::ALL.into_iter().find(|a| format!("{a}") == name).ok_or_else(|| {
                fail(format!("unknown app `{name}` (try ftpd, httpd, bind, sendmail, imap, nfs)"))
            })?;
        let scale = match flag("--scale") {
            Some(s) => s.parse::<u32>().map_err(|_| fail(format!("bad --scale `{s}`")))?.max(1),
            None => 1,
        };
        return Ok(build_app_scaled(app, scale));
    }
    if let Some(name) = flag("--fixture") {
        return fixtures::fixture(&name).ok_or_else(|| {
            fail(format!(
                "unknown fixture `{name}` (available: {})",
                fixtures::FIXTURE_NAMES.join(", ")
            ))
        });
    }
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        return Err((
            EXIT_USAGE,
            "missing input: give a .s file, --app NAME, or --fixture NAME".to_owned(),
        ));
    };
    let source =
        std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    let name = path.rsplit('/').next().unwrap_or(path).trim_end_matches(".s");
    assemble(name, &source).map_err(|e| fail(format!("{path}: {e}")))
}

/// `ir32 analyze` / `ir32 lint` / `ir32 gadgets` — run the static
/// pipeline and print the report. `lint` and `gadgets` exit
/// [`EXIT_FINDINGS`] when there are findings.
fn cmd_analyze(cmd: &str, args: &[String]) -> ExitCode {
    let image = match analysis_image(args) {
        Ok(img) => img,
        Err((code, e)) => {
            eprintln!("ir32 {cmd}: {e}");
            return ExitCode::from(code);
        }
    };
    let json = args.iter().any(|a| a == "--json");
    let clean = if cmd == "gadgets" {
        let report = enumerate_gadgets(&image);
        if json {
            println!("{}", surface_json(&report));
        } else {
            print_surface(&report);
        }
        report.clean()
    } else {
        let report = analyze_image(&image);
        if json {
            println!("{}", report_json(&report));
        } else {
            print_report(&report);
        }
        report.clean()
    };
    if cmd != "analyze" && !clean {
        return ExitCode::from(EXIT_FINDINGS);
    }
    ExitCode::SUCCESS
}

/// Renders a `truncated` map (`kind → total occurrences`) as a JSON
/// object; `{}` when nothing was capped.
fn truncated_json(truncated: &std::collections::BTreeMap<&'static str, u64>) -> String {
    let mut o = JsonObject::new();
    for (&kind, &total) in truncated {
        o.u64(kind, total);
    }
    o.finish()
}

fn findings_json(findings: &[indra::analyze::Finding]) -> String {
    json_array(findings.iter().map(|f| {
        let mut o = JsonObject::new();
        o.str("kind", f.kind.as_str());
        match f.addr {
            Some(a) => o.u64("addr", u64::from(a)),
            None => o.raw("addr", "null"),
        };
        o.str("detail", &f.detail);
        o.finish()
    }))
}

fn report_json(report: &PolicyReport) -> String {
    let findings = findings_json(&report.findings);
    let s = &report.stats;
    let mut stats = JsonObject::new();
    stats
        .u64("insns", s.insns)
        .u64("blocks", s.blocks)
        .u64("cfg_edges", s.cfg_edges)
        .u64("functions", s.functions)
        .u64("call_edges", s.call_edges)
        .u64("declared_indirect", s.declared_indirect)
        .u64("proven_indirect", s.proven_indirect)
        .u64("registered_indirect", s.registered_indirect)
        .u64("executable_pages", s.executable_pages);
    match s.max_call_depth {
        Some(d) => stats.u64("max_call_depth", u64::from(d)),
        None => stats.raw("max_call_depth", "null"),
    };
    let mut out = JsonObject::new();
    out.str("image", &report.image)
        .raw("findings", &findings)
        .raw("truncated", &truncated_json(&report.truncated))
        .raw("stats", &stats.finish());
    out.finish()
}

fn surface_json(report: &SurfaceReport) -> String {
    let gadgets = json_array(report.gadgets.iter().map(|g| {
        let mut o = JsonObject::new();
        o.u64("entry", u64::from(g.entry))
            .u64("insns", u64::from(g.insns))
            .u64("transfer_at", u64::from(g.transfer_at))
            .str("kind", g.kind.as_str())
            .raw("targets", &json_array(g.targets.iter().map(|t| u64::from(*t).to_string())))
            .u64("regs_clobbered", u64::from(g.effects.regs_clobbered))
            .u64("mem_writes", u64::from(g.effects.mem_writes))
            .u64("mem_reads", u64::from(g.effects.mem_reads))
            .bool("syscall_reachable", g.effects.syscall_reachable);
        o.finish()
    }));
    let slots = json_array(report.writable_slots.iter().map(|s| {
        let mut o = JsonObject::new();
        o.u64("addr", u64::from(s.addr))
            .u64("target", u64::from(s.target))
            .str("segment", &s.segment);
        o.finish()
    }));
    let chain = json_array(report.chain.iter().map(|a| u64::from(*a).to_string()));
    let s = &report.stats;
    let mut stats = JsonObject::new();
    stats
        .u64("registered_targets", s.registered_targets)
        .u64("dispatch_sites", s.dispatch_sites)
        .u64("in_policy_pairs", s.in_policy_pairs)
        .u64("gadgets", s.gadgets)
        .u64("chainable_gadgets", s.chainable_gadgets)
        .u64("writable_slots", s.writable_slots)
        .u64("syscall_reachable_targets", s.syscall_reachable_targets)
        .u64("attack_surface", s.attack_surface);
    let mut out = JsonObject::new();
    out.str("image", &report.image)
        .raw("gadgets", &gadgets)
        .raw("writable_slots", &slots)
        .raw("chain", &chain)
        .raw("findings", &findings_json(&report.findings))
        .raw("truncated", &truncated_json(&report.truncated))
        .raw("stats", &stats.finish());
    out.finish()
}

fn print_surface(report: &SurfaceReport) {
    let s = &report.stats;
    println!("image `{}`: CFI-aware gadget catalog (tightened policy)", report.image);
    println!(
        "  {} registered target(s), {} dispatch site(s), {} in-policy transfer pair(s)",
        s.registered_targets, s.dispatch_sites, s.in_policy_pairs
    );
    println!(
        "  {} gadget(s) ({} chainable), {} writable code-pointer slot(s), {} syscall-reachable target(s)",
        s.gadgets, s.chainable_gadgets, s.writable_slots, s.syscall_reachable_targets
    );
    println!("  attack surface score: {}", s.attack_surface);
    for g in &report.gadgets {
        println!(
            "    gadget {:#010x}: {} insn(s) to {} at {:#010x} ({} target(s), {} write(s), {} read(s){})",
            g.entry,
            g.insns,
            g.kind.as_str(),
            g.transfer_at,
            g.targets.len(),
            g.effects.mem_writes,
            g.effects.mem_reads,
            if g.effects.syscall_reachable { ", syscall reachable" } else { "" }
        );
    }
    if report.findings.is_empty() {
        println!("  findings: none");
    } else {
        println!("  findings ({}):", report.findings.len());
        for f in &report.findings {
            println!("    {f}");
        }
    }
    for (kind, total) in &report.truncated {
        println!("  (capped: {total} {kind} occurrence(s) total, first 32 listed)");
    }
}

fn print_report(report: &PolicyReport) {
    let s = &report.stats;
    println!("image `{}`: static CFG + CFI policy report", report.image);
    println!(
        "  {} insns in {} blocks ({} cfg edges), {} functions ({} call edges)",
        s.insns, s.blocks, s.cfg_edges, s.functions, s.call_edges
    );
    match s.max_call_depth {
        Some(d) => println!("  max static call depth: {d} frames"),
        None => println!("  max static call depth: unbounded (recursion)"),
    }
    println!(
        "  indirect targets: {} declared, {} proven, {} registered under strict policy",
        s.declared_indirect, s.proven_indirect, s.registered_indirect
    );
    println!("  executable pages: {}", s.executable_pages);
    if report.findings.is_empty() {
        println!("  findings: none");
    } else {
        println!("  findings ({}):", report.findings.len());
        for f in &report.findings {
            println!("    {f}");
        }
    }
    for (kind, total) in &report.truncated {
        println!("  (capped: {total} {kind} occurrence(s) total, first 32 listed)");
    }
}

fn cmd_asm(image: &Image) -> ExitCode {
    println!("image `{}`  entry {:#010x}", image.name, image.entry);
    println!("\nsegments:");
    for seg in &image.segments {
        println!(
            "  {:<10} {:#010x}..{:#010x}  {}  ({} bytes initialized)",
            seg.name,
            seg.vaddr,
            seg.end(),
            seg.perms,
            seg.data.len()
        );
    }
    println!("\nsymbols:");
    for sym in &image.symbols {
        println!(
            "  {:#010x}  {:<9} {:<5} {}",
            sym.addr,
            format!("{:?}", sym.kind).to_lowercase(),
            if sym.exported { "glob" } else { "local" },
            sym.name
        );
    }
    println!("\n{} valid indirect-branch targets registered", image.indirect_targets.len());
    ExitCode::SUCCESS
}

fn cmd_disasm(image: &Image) -> ExitCode {
    for line in disassemble_image(image) {
        println!("{line}");
    }
    ExitCode::SUCCESS
}

/// Run functionally (no monitoring) on a fresh machine + kernel-lite.
fn cmd_run(image: &Image, requests: &[Vec<u8>]) -> ExitCode {
    let mut machine = Machine::new(MachineConfig::default());
    machine.boot_asymmetric();
    machine.set_monitoring(false);
    let mut os = Os::new();
    let pid = match os.spawn_service(&mut machine, 1, image) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ir32 run: {e}");
            return ExitCode::FAILURE;
        }
    };
    for r in requests {
        os.push_request(pid, r.clone(), false);
    }

    for _ in 0..2_000_000_000u64 {
        match machine.step_core_simple(1) {
            CoreStep::Executed => {}
            CoreStep::Halted => {
                finish_run(&machine, &mut os, pid, "halt");
                return ExitCode::SUCCESS;
            }
            CoreStep::Syscall { code } => {
                let effect = os.handle_syscall(&mut machine, 1, code);
                if let SyscallEffect::Exited { code, .. } = effect {
                    finish_run(&machine, &mut os, pid, &format!("exit({code})"));
                    return ExitCode::SUCCESS;
                }
                if matches!(effect, SyscallEffect::BlockedOnRecv { .. })
                    && os.try_deliver(&mut machine, pid).is_none()
                {
                    finish_run(&machine, &mut os, pid, "blocked on net_recv (inbox empty)");
                    return ExitCode::SUCCESS;
                }
            }
            CoreStep::Fault(f) => {
                eprintln!("fault: {f}");
                finish_run(&machine, &mut os, pid, "faulted");
                return ExitCode::FAILURE;
            }
            other => {
                eprintln!("unexpected core state: {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("ir32 run: instruction budget exhausted (infinite loop?)");
    ExitCode::FAILURE
}

fn finish_run(machine: &Machine, os: &mut Os, pid: indra::os::Pid, how: &str) {
    let core = machine.core(1);
    println!("stopped: {how}");
    println!(
        "retired {} instructions in {} cycles (a0 = {:#x})",
        core.retired(),
        core.cycles(),
        core.reg(indra::isa::Reg::A0)
    );
    let responses = os.take_responses(pid);
    for (i, r) in responses.iter().enumerate() {
        println!("response {i}: {} bytes: {:?}", r.data.len(), String::from_utf8_lossy(&r.data));
    }
    if !os.audit_log().is_empty() {
        println!("audit log:");
        for line in os.audit_log() {
            println!("  {line}");
        }
    }
}

/// Run with the trace hardware live and dump the monitor's event stream.
fn cmd_trace(image: &Image, requests: &[Vec<u8>]) -> ExitCode {
    const MAX_EVENTS: usize = 200;
    let mut machine = Machine::new(MachineConfig::default());
    machine.boot_asymmetric();
    let mut os = Os::new();
    let pid = match os.spawn_service(&mut machine, 1, image) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ir32 trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    for r in requests {
        os.push_request(pid, r.clone(), false);
    }

    let mut shown = 0usize;
    for _ in 0..5_000_000u64 {
        let step = machine.step_core_simple(1);
        while let Some(ev) = machine.fifo_mut().pop() {
            if shown < MAX_EVENTS {
                shown += 1;
                print_event(shown, &ev.event, ev.cycle);
            }
        }
        match step {
            CoreStep::Executed | CoreStep::FifoStalled => {}
            CoreStep::Halted => break,
            CoreStep::Syscall { code } => {
                let effect = os.handle_syscall(&mut machine, 1, code);
                if matches!(effect, SyscallEffect::Exited { .. }) {
                    break;
                }
                if matches!(effect, SyscallEffect::BlockedOnRecv { .. })
                    && os.try_deliver(&mut machine, pid).is_none()
                {
                    break;
                }
            }
            CoreStep::Fault(f) => {
                println!("-- fault: {f}");
                break;
            }
            CoreStep::Stalled => break,
        }
        if shown >= MAX_EVENTS {
            break;
        }
    }
    println!("-- {shown} trace events shown (cap {MAX_EVENTS})");
    ExitCode::SUCCESS
}

fn print_event(i: usize, ev: &TraceEvent, cycle: u64) {
    let text = match ev {
        TraceEvent::Call { pc, target, return_addr, .. } => {
            format!("call      {pc:#010x} -> {target:#010x} (ret to {return_addr:#010x})")
        }
        TraceEvent::IndirectCall { pc, target, .. } => {
            format!("call.ind  {pc:#010x} -> {target:#010x}")
        }
        TraceEvent::Return { pc, target, .. } => {
            format!("return    {pc:#010x} -> {target:#010x}")
        }
        TraceEvent::IndirectJump { pc, target } => {
            format!("jump.ind  {pc:#010x} -> {target:#010x}")
        }
        TraceEvent::CodeFill { page_vaddr, pc } => {
            format!("codefill  page {page_vaddr:#010x} (pc {pc:#010x})")
        }
        TraceEvent::SyscallSync { pc, code } => {
            format!("syscall   #{code} at {pc:#010x} (sync point)")
        }
    };
    println!("{i:>4} @{cycle:>8}  {text}");
}
