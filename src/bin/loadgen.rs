//! `loadgen` — open-loop load generator for `fleetd`. All logic lives
//! in [`indra_serve::loadgen`]; this wrapper only parses flags so
//! `cargo run --release --bin loadgen` works from the workspace root.

use std::process::ExitCode;

use indra::serve::{parse_loadgen_args, run_loadgen, LOADGEN_USAGE};

fn main() -> ExitCode {
    match parse_loadgen_args(std::env::args().skip(1)) {
        Ok(args) => match run_loadgen(&args) {
            Ok(report) => {
                match report.knee_rps {
                    Some(knee) => println!("loadgen: saturation knee at {knee:.1} req/s offered"),
                    None => println!("loadgen: overloaded at every offered rate (no knee)"),
                }
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) if msg == LOADGEN_USAGE => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
