//! redteambench — coverage-guided red-team campaign benchmark.
//!
//! Runs the seeded `indra-redteam` campaign (four attack families:
//! in-policy JOP plants, smashed returns, dormant corruption, format
//! exhaustion) against a generated service and reports the
//! **detection-latency distribution by family**: how many instructions
//! each payload retired into its request before the monitor, watchdog
//! or a fault stopped it — and which payloads were never stopped at
//! all.
//!
//! Results go to `results/BENCH_redteam.json`. The output is
//! **byte-deterministic** for a given `--seed`: every candidate, score
//! and minimization step derives from it, and no wall-clock values are
//! written to the file. `--assert-families-min` /
//! `--assert-detections-min` / `--assert-undetected-min` turn the run
//! into a self-checking smoke test.

use std::time::Instant;

use indra_core::json::{json_array, JsonObject};
use indra_redteam::{run_campaign, CampaignConfig, FamilyReport};

struct Args {
    quick: bool,
    seed: u64,
    out: String,
    assert_families_min: Option<u64>,
    assert_detections_min: Option<u64>,
    assert_undetected_min: Option<u64>,
}

const USAGE: &str = "\
redteambench — coverage-guided red-team campaign benchmark

USAGE: redteambench [--quick] [--seed N] [--out PATH]
                    [--assert-families-min N]
                    [--assert-detections-min N]
                    [--assert-undetected-min N]

Evolves attack payloads across four families (jop_chain, rop_ret,
dormant_span, exhaust) against a generated service, scores each by how
far it got before detection, and writes the detection-latency
distribution by family to results/BENCH_redteam.json. Output is
byte-deterministic for a given --seed. The assert flags exit non-zero
when fewer than N families were exercised, fewer than N candidates
were detected, or fewer than N ran undetected.";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        seed: 1,
        out: "results/BENCH_redteam.json".into(),
        assert_families_min: None,
        assert_detections_min: None,
        assert_undetected_min: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--assert-families-min" => {
                let v = it.next().ok_or("--assert-families-min needs a value")?;
                args.assert_families_min =
                    Some(v.parse().map_err(|e| format!("--assert-families-min: {e}"))?);
            }
            "--assert-detections-min" => {
                let v = it.next().ok_or("--assert-detections-min needs a value")?;
                args.assert_detections_min =
                    Some(v.parse().map_err(|e| format!("--assert-detections-min: {e}"))?);
            }
            "--assert-undetected-min" => {
                let v = it.next().ok_or("--assert-undetected-min needs a value")?;
                args.assert_undetected_min =
                    Some(v.parse().map_err(|e| format!("--assert-undetected-min: {e}"))?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Latency distribution over the detected candidates of one family.
fn latency_json(lat: &[u64]) -> String {
    let mut o = JsonObject::new();
    o.u64("count", lat.len() as u64);
    if let (Some(&min), Some(&max)) = (lat.first(), lat.last()) {
        let mean = lat.iter().sum::<u64>() / lat.len() as u64;
        o.u64("min", min).u64("p50", lat[lat.len() / 2]).u64("max", max).u64("mean", mean);
    }
    o.finish()
}

fn family_json(f: &FamilyReport) -> String {
    let lat = f.latencies();
    let b = &f.best;
    JsonObject::new()
        .str("family", f.family.as_str())
        .u64("evaluated", f.evaluated.len() as u64)
        .u64("detected", lat.len() as u64)
        .u64("undetected", f.undetected() as u64)
        .raw("latency", &latency_json(&lat))
        .raw("latencies", &json_array(lat.iter().map(u64::to_string)))
        .raw(
            "best",
            &JsonObject::new()
                .str("genome", &b.genome.serialize())
                .bool("detected", b.score.detected)
                .str("cause", b.score.cause.as_str())
                .u64("insns_into_request", b.score.insns_into_request)
                .u64("writes_landed", u64::from(b.score.writes_landed))
                .u64("policy_checks_passed", b.score.policy_checks_passed)
                .u64("requests_survived", u64::from(b.score.requests_survived))
                .u64("fitness", b.score.fitness)
                .finish(),
        )
        .finish()
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = CampaignConfig {
        seed: args.seed,
        cohort: if args.quick { 2 } else { 6 },
        mutations: if args.quick { 1 } else { 6 },
        ..CampaignConfig::default()
    };

    println!(
        "redteambench: seed {}, {} on {}@{} (timeout {} insns), cohort {}, mutations {}",
        cfg.seed,
        if args.quick { "quick" } else { "full" },
        cfg.eval.app,
        cfg.eval.scale,
        cfg.eval.request_timeout_insns,
        cfg.cohort,
        cfg.mutations,
    );
    let started = Instant::now();
    let report = run_campaign(&cfg);
    let wall = started.elapsed().as_secs_f64();

    println!(
        "{:>14} {:>5} {:>7} {:>6} {:>10} {:>10} {:>10}  best",
        "family", "evald", "detect", "undet", "lat min", "lat p50", "lat max"
    );
    for f in &report.families {
        let lat = f.latencies();
        let (min, p50, max) = if lat.is_empty() {
            ("-".into(), "-".into(), "-".into())
        } else {
            (lat[0].to_string(), lat[lat.len() / 2].to_string(), lat[lat.len() - 1].to_string())
        };
        println!(
            "{:>14} {:>5} {:>7} {:>6} {:>10} {:>10} {:>10}  {} ({}, {} insns, {} writes)",
            f.family.as_str(),
            f.evaluated.len(),
            lat.len(),
            f.undetected(),
            min,
            p50,
            max,
            f.best.genome.serialize(),
            if f.best.score.detected { f.best.score.cause.as_str() } else { "undetected" },
            f.best.score.insns_into_request,
            f.best.score.writes_landed,
        );
    }

    let detections = report.detections() as u64;
    let undetected: u64 = report.families.iter().map(|f| f.undetected() as u64).sum();
    println!(
        "totals: {} candidates, {} detected, {} undetected in {wall:.1}s",
        report.evaluated(),
        detections,
        undetected,
    );

    // No wall-clock in the file: byte-determinism is a contract here.
    let json = JsonObject::new()
        .str("bench", "redteam")
        .bool("quick", args.quick)
        .u64("seed", report.seed)
        .str("app", cfg.eval.app.name())
        .u64("scale", u64::from(cfg.eval.scale))
        .u64("request_timeout_insns", cfg.eval.request_timeout_insns)
        .u64("cohort", u64::from(cfg.cohort))
        .u64("mutations", u64::from(cfg.mutations))
        .raw("families", &json_array(report.families.iter().map(family_json)))
        .u64("evaluated", report.evaluated() as u64)
        .u64("detections", detections)
        .u64("undetected", undetected)
        .finish();
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create results dir");
        }
    }
    std::fs::write(&args.out, format!("{json}\n")).expect("write results json");
    println!("wrote {}", args.out);

    let families_exercised =
        report.families.iter().filter(|f| !f.evaluated.is_empty()).count() as u64;
    if let Some(min) = args.assert_families_min {
        if families_exercised < min {
            eprintln!("redteambench: {families_exercised} families exercised, below floor {min}");
            std::process::exit(1);
        }
    }
    if let Some(min) = args.assert_detections_min {
        if detections < min {
            eprintln!("redteambench: {detections} detections, below floor {min}");
            std::process::exit(1);
        }
    }
    if let Some(min) = args.assert_undetected_min {
        if undetected < min {
            eprintln!("redteambench: {undetected} undetected candidates, below floor {min}");
            std::process::exit(1);
        }
    }
}
