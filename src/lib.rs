#![warn(missing_docs)]
//! # indra — a dependable and revivable multicore architecture framework
//!
//! A comprehensive Rust reproduction of *"An Integrated Framework for
//! Dependable and Revivable Architectures Using Multicore Processors"*
//! (Shi, Lee, Falk & Ghosh — ISCA 2006).
//!
//! INDRA configures a multicore asymmetrically: a high-privilege
//! **resurrector** core runs a software monitor insulated from the network,
//! while low-privilege **resurrectee** cores run services. The resurrector
//! inspects execution traces streamed over an on-chip FIFO (function
//! call/return pairing, code-origin checks at IL1 fill, control-transfer
//! policy) and, on detecting corruption, triggers a **delta-page rollback**
//! that undoes everything the malicious request wrote — without copying
//! pages and without dropping the requests of well-behaved clients.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`isa`] — the IR32 instruction set, assembler and program builder.
//! * [`analyze`] — static CFG recovery, CFI policy verification and the
//!   guest-binary lint pass; [`analyze::tighten`] derives the
//!   declared-∩-proven policy the loader registers with the monitor.
//! * [`mem`] — caches, TLBs, SDRAM timing, physical memory.
//! * [`sim`] — cycle-accounting cores, the asymmetric machine, trace FIFO,
//!   CAM filter, memory watchdog.
//! * [`os`] — the kernel-lite: syscalls, processes, network queue,
//!   resource tracking.
//! * [`core`] — the paper's contribution: monitor, delta backup engine,
//!   baseline checkpointing schemes, hybrid recovery, the [`core::IndraSystem`]
//!   top-level driver.
//! * [`workloads`] — the six synthetic network services and the exploit
//!   generators used by the evaluation.
//! * [`redteam`] — the coverage-guided offensive campaign: seeded
//!   mutation of CFI-respecting attack payloads (JOP plants, smashed
//!   returns, dormant corruption, exhaustion) scored by detection
//!   latency, with minimized winners pinned as the regression corpus
//!   under `corpus/redteam/`.
//! * [`fleet`] — the sharded parallel fleet executor: many independent
//!   INDRA cells across OS threads under deterministic open-loop
//!   traffic, aggregated into one fleet-wide report.
//! * [`serve`] — the live control plane: the `fleetd` daemon serving
//!   fleet traffic over a real TCP socket (bounded admission, live
//!   scale/drain, graceful shutdown) with deterministic record/replay
//!   from per-shard ingress logs, plus the open-loop `loadgen`.
//! * [`persist`] — the durable snapshot store and write-ahead delta
//!   journal: crash-safe checkpointing of whole frozen systems, and
//!   byte-identical fleet resume after a kill (see
//!   [`fleet::resume_fleet`]).
//! * [`bench`] — the experiment harness regenerating the paper's
//!   tables and figures, plus the shared latency [`bench::Histogram`].
//! * [`rng`] — the in-tree deterministic PRNG (seed-derivation,
//!   property-test driver) the workspace uses instead of external
//!   `rand`/`proptest`.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete tour: build a service, boot
//! the asymmetric machine, serve requests, survive an exploit — and
//! `examples/fleet_parallel.rs` for a six-app fleet surviving an attack
//! wave.

pub use indra_analyze as analyze;
pub use indra_bench as bench;
pub use indra_core as core;
pub use indra_fleet as fleet;
pub use indra_isa as isa;
pub use indra_mem as mem;
pub use indra_os as os;
pub use indra_persist as persist;
pub use indra_redteam as redteam;
pub use indra_rng as rng;
pub use indra_serve as serve;
pub use indra_sim as sim;
pub use indra_workloads as workloads;
