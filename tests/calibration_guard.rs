//! Regression guard for the workload calibration: the *orderings* every
//! figure depends on must survive any future tuning. (Absolute values are
//! checked at full scale by the `paper` harness; these scaled-down runs
//! pin the shape only.)

use indra_bench::{run, Metrics, RunOptions};
use indra_workloads::ServiceApp;

fn quick(app: ServiceApp) -> Metrics {
    let mut o = RunOptions::quick(app);
    o.scale = 12;
    o.requests = 4;
    o.warmup = 1;
    run(&o)
}

#[test]
fn figure_orderings_hold() {
    let bind = quick(ServiceApp::Bind);
    let imap = quick(ServiceApp::Imap);
    let httpd = quick(ServiceApp::Httpd);

    // Fig. 13: bind has the shortest requests, imap the longest.
    assert!(bind.insns_per_request < httpd.insns_per_request);
    assert!(httpd.insns_per_request < imap.insns_per_request);

    // Fig. 9: bind misses the IL1 the most, imap the least of the three.
    assert!(
        bind.il1.miss_rate() > httpd.il1.miss_rate(),
        "bind {:.3} vs httpd {:.3}",
        bind.il1.miss_rate(),
        httpd.il1.miss_rate()
    );
    assert!(httpd.il1.miss_rate() > imap.il1.miss_rate());

    // Fig. 15: bind backs up the largest fraction of its stores.
    assert!(bind.scheme.backup_fraction() > httpd.scheme.backup_fraction());
    assert!(bind.scheme.backup_fraction() > imap.scheme.backup_fraction());
    // (At this reduced scale the response fill dilutes bind's fraction;
    // the full-scale number is ~46% — see EXPERIMENTS.md.)
    assert!(
        bind.scheme.backup_fraction() > 0.2,
        "bind is the write-dense outlier: {:.2}",
        bind.scheme.backup_fraction()
    );
    assert!(imap.scheme.backup_fraction() < bind.scheme.backup_fraction() * 0.8);

    // Fig. 10: the CAM filters the bulk of code-origin checks everywhere.
    for m in [&bind, &imap, &httpd] {
        assert!(m.cam.sent_fraction() < 0.25, "CAM must filter most checks");
        assert!(m.cam.sent_fraction() > 0.0, "but never all of them");
    }

    // Clean runs: no detections, everything served.
    for m in [&bind, &imap, &httpd] {
        assert_eq!(m.report.served, 4);
        assert!(m.report.detections.is_empty());
    }
}

#[test]
fn monitoring_cost_is_small_but_nonzero() {
    // Fig. 11's qualitative claim at reduced scale: monitoring costs
    // something, but far less than 25%.
    let mut on = RunOptions::quick(ServiceApp::Httpd);
    on.scale = 12;
    on.requests = 4;
    on.warmup = 1;
    on.scheme = indra_core::SchemeKind::None;
    let mut off = on.clone();
    off.monitoring = false;
    let ratio = run(&on).cycles_per_benign / run(&off).cycles_per_benign;
    assert!(ratio > 1.0, "monitoring is not free: {ratio:.3}");
    assert!(ratio < 1.25, "but it must stay cheap: {ratio:.3}");
}
