//! CLI hardening regression: every binary must reject unknown or
//! malformed flags with a nonzero exit and a usage string on stderr —
//! and `--help` must succeed. `ir32` used to silently ignore unknown
//! `--flags`; these tests pin the hardened behavior.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin).args(args).output().expect("spawn binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn fleetbench_rejects_unknown_and_malformed_flags() {
    let bin = env!("CARGO_BIN_EXE_fleetbench");
    let (ok, _, err) = run(bin, &["--frobnicate"]);
    assert!(!ok, "unknown flag must exit nonzero");
    assert!(err.contains("unknown option --frobnicate") && err.contains("USAGE"), "{err}");
    let (ok, _, err) = run(bin, &["--shards", "zero"]);
    assert!(!ok && err.contains("--shards"), "{err}");
    let (ok, out, _) = run(bin, &["--help"]);
    assert!(ok && out.contains("USAGE"), "{out}");
}

#[test]
fn fleetbench_validates_replica_flags() {
    let bin = env!("CARGO_BIN_EXE_fleetbench");
    for k in ["0", "4", "-1", "three"] {
        let (ok, _, err) = run(bin, &["--replicas", k]);
        assert!(!ok, "--replicas {k} must exit nonzero");
        assert!(err.contains("--replicas") && err.contains("USAGE"), "{err}");
    }
    for n in ["0", "1000001", "soon"] {
        let (ok, _, err) = run(bin, &["--rejuvenate-every", n]);
        assert!(!ok, "--rejuvenate-every {n} must exit nonzero");
        assert!(err.contains("--rejuvenate-every") && err.contains("USAGE"), "{err}");
    }
    let (ok, out, _) = run(bin, &["--help"]);
    assert!(ok && out.contains("--replicas K"), "usage must document replication: {out}");
}

#[test]
fn fleetd_validates_replica_flags() {
    let bin = env!("CARGO_BIN_EXE_fleetd");
    for k in ["0", "4", "-1"] {
        let (ok, _, err) = run(bin, &["--state", "d", "--replicas", k]);
        assert!(!ok, "--replicas {k} must exit nonzero");
        assert!(err.contains("--replicas") && err.contains("USAGE"), "{err}");
    }
    for n in ["0", "1000001"] {
        let (ok, _, err) = run(bin, &["--state", "d", "--rejuvenate-every", n]);
        assert!(!ok, "--rejuvenate-every {n} must exit nonzero");
        assert!(err.contains("[1, 1000000]") && err.contains("USAGE"), "{err}");
    }
    let (ok, out, _) = run(bin, &["--help"]);
    assert!(ok && out.contains("--replicas K"), "usage must document replication: {out}");
}

/// `--no-superblocks` must parse on both fleet CLIs and be documented
/// in their usage strings (it is persisted to the run metadata, so a
/// typo silently running the wrong engine would poison replay).
#[test]
fn fleet_clis_accept_no_superblocks() {
    let bin = env!("CARGO_BIN_EXE_fleetbench");
    let (ok, out, _) = run(bin, &["--help"]);
    assert!(ok && out.contains("--no-superblocks"), "fleetbench usage must document it: {out}");
    let (ok, _, err) = run(bin, &["--no-superblocks", "--shards", "zero"]);
    assert!(!ok && err.contains("--shards"), "flag must parse, later error still trips: {err}");

    let bin = env!("CARGO_BIN_EXE_fleetd");
    let (ok, out, _) = run(bin, &["--help"]);
    assert!(ok && out.contains("--no-superblocks"), "fleetd usage must document it: {out}");
    let (ok, _, err) = run(bin, &["--no-superblocks", "--port", "1"]);
    assert!(!ok && err.contains("--state"), "flag must parse, later error still trips: {err}");
}

/// `--no-compartments` must parse on every CLI that persists or
/// measures the compartment setting: the flag travels through run
/// metadata (fleetbench/fleetd) and labels benchmark output
/// (compartmentbench), so all three must know it.
#[test]
fn fleet_clis_accept_no_compartments() {
    let bin = env!("CARGO_BIN_EXE_fleetbench");
    let (ok, out, _) = run(bin, &["--help"]);
    assert!(ok && out.contains("--no-compartments"), "fleetbench usage must document it: {out}");
    let (ok, _, err) = run(bin, &["--no-compartments", "--shards", "zero"]);
    assert!(!ok && err.contains("--shards"), "flag must parse, later error still trips: {err}");

    let bin = env!("CARGO_BIN_EXE_fleetd");
    let (ok, out, _) = run(bin, &["--help"]);
    assert!(ok && out.contains("--no-compartments"), "fleetd usage must document it: {out}");
    let (ok, _, err) = run(bin, &["--no-compartments", "--port", "1"]);
    assert!(!ok && err.contains("--state"), "flag must parse, later error still trips: {err}");
}

#[test]
fn compartmentbench_rejects_unknown_and_malformed_flags() {
    let bin = env!("CARGO_BIN_EXE_compartmentbench");
    let (ok, _, err) = run(bin, &["--frobnicate"]);
    assert!(!ok, "unknown flag must exit nonzero");
    assert!(err.contains("unknown option --frobnicate") && err.contains("USAGE"), "{err}");
    let (ok, _, err) = run(bin, &["--assert-discards-min", "lots"]);
    assert!(!ok && err.contains("--assert-discards-min"), "{err}");
    let (ok, out, _) = run(bin, &["--help"]);
    assert!(ok && out.contains("USAGE") && out.contains("--assert-benign-lost-max"), "{out}");
}

#[test]
fn fleetd_rejects_unknown_and_malformed_flags() {
    let bin = env!("CARGO_BIN_EXE_fleetd");
    let (ok, _, err) = run(bin, &["--state", "d", "--bogus"]);
    assert!(!ok, "unknown flag must exit nonzero");
    assert!(err.contains("unknown option --bogus") && err.contains("USAGE"), "{err}");
    let (ok, _, err) = run(bin, &["--port", "1"]);
    assert!(!ok && err.contains("--state"), "missing --state must fail: {err}");
    let (ok, _, err) = run(bin, &["--state", "d", "--app", "notepad"]);
    assert!(!ok && err.contains("unknown service"), "{err}");
    let (ok, out, _) = run(bin, &["--help"]);
    assert!(ok && out.contains("USAGE"), "{out}");
}

#[test]
fn loadgen_rejects_unknown_and_malformed_flags() {
    let bin = env!("CARGO_BIN_EXE_loadgen");
    let (ok, _, err) = run(bin, &["--addr", "x", "--frobnicate"]);
    assert!(!ok, "unknown flag must exit nonzero");
    assert!(err.contains("unknown option --frobnicate") && err.contains("USAGE"), "{err}");
    let (ok, _, err) = run(bin, &[]);
    assert!(!ok && err.contains("--addr"), "missing --addr must fail: {err}");
    let (ok, _, err) = run(bin, &["--addr", "x", "--rates", "0"]);
    assert!(!ok && err.contains("--rates"), "{err}");
    let (ok, out, _) = run(bin, &["--help"]);
    assert!(ok && out.contains("USAGE"), "{out}");
}

#[test]
fn ir32_rejects_unknown_flags_instead_of_ignoring_them() {
    let bin = env!("CARGO_BIN_EXE_ir32");
    let (ok, _, err) = run(bin, &["lint", "--app", "httpd", "--bogus"]);
    assert!(!ok, "unknown flag must exit nonzero");
    assert!(err.contains("unknown option --bogus") && err.contains("usage"), "{err}");
    let (ok, _, err) = run(bin, &["run", "prog.s", "--req"]);
    assert!(!ok && err.contains("--req needs a value"), "{err}");
    let (ok, _, err) = run(bin, &["asm", "prog.s", "--json"]);
    assert!(!ok && err.contains("unknown option --json"), "--json is lint-only: {err}");
    let (ok, _, err) = run(bin, &[]);
    assert!(!ok && err.contains("usage"), "{err}");
}

/// Raw exit code of `bin args…` (None if killed by a signal).
fn code(bin: &str, args: &[&str]) -> Option<i32> {
    Command::new(bin).args(args).output().expect("spawn binary").status.code()
}

#[test]
fn ir32_exit_codes_distinguish_findings_errors_and_usage() {
    // The audited contract: 0 = clean, 1 = findings present (lint /
    // gadgets only), 2 = usage error, 3 = analysis error. Scripts gate
    // on these; renumbering is a breaking change.
    let bin = env!("CARGO_BIN_EXE_ir32");
    // Usage errors: no args, unknown command, unknown flag, missing input.
    assert_eq!(code(bin, &[]), Some(2));
    assert_eq!(code(bin, &["frobnicate"]), Some(2));
    assert_eq!(code(bin, &["lint", "--bogus"]), Some(2));
    assert_eq!(code(bin, &["gadgets"]), Some(2));
    // Analysis errors: unreadable file, unknown app / fixture, bad scale.
    assert_eq!(code(bin, &["lint", "/nonexistent/prog.s"]), Some(3));
    assert_eq!(code(bin, &["lint", "--app", "warpcored"]), Some(3));
    assert_eq!(code(bin, &["gadgets", "--fixture", "nope"]), Some(3));
    assert_eq!(code(bin, &["gadgets", "--app", "httpd", "--scale", "lots"]), Some(3));
    // Findings present: lint and gadgets report via exit 1…
    assert_eq!(code(bin, &["lint", "--fixture", "recursive"]), Some(1));
    assert_eq!(code(bin, &["gadgets", "--fixture", "gadget_chain"]), Some(1));
    assert_eq!(code(bin, &["gadgets", "--app", "httpd", "--scale", "20"]), Some(1));
    // …while `analyze` always reports cleanly (exit 0), and a
    // surface-free image is a clean gadgets run.
    assert_eq!(code(bin, &["analyze", "--fixture", "recursive"]), Some(0));
    assert_eq!(code(bin, &["gadgets", "--fixture", "recursive"]), Some(0));
}

#[test]
fn redteambench_rejects_unknown_and_malformed_flags() {
    let bin = env!("CARGO_BIN_EXE_redteambench");
    let (ok, _, err) = run(bin, &["--frobnicate"]);
    assert!(!ok, "unknown flag must exit nonzero");
    assert!(err.contains("unknown option --frobnicate") && err.contains("USAGE"), "{err}");
    assert_eq!(code(bin, &["--frobnicate"]), Some(2), "usage errors exit 2");
    let (ok, _, err) = run(bin, &["--seed", "entropy"]);
    assert!(!ok && err.contains("--seed"), "{err}");
    let (ok, _, err) = run(bin, &["--assert-detections-min"]);
    assert!(!ok && err.contains("--assert-detections-min needs a value"), "{err}");
    let (ok, out, _) = run(bin, &["--help"]);
    assert!(ok && out.contains("USAGE") && out.contains("--seed"), "{out}");
}
