//! Per-request compartments: fine-grained rewind-and-discard with zero
//! collateral rollback.
//!
//! The tentpole contract under test: every in-flight request runs in
//! its own compartment (a per-request heap arena plus compartment-
//! tagged dirty lines in the delta engine), so when a dormant
//! corruption fells a *later* benign request, recovery discards only
//! the guilty compartment's pages and arena, requeues the innocent
//! victim, and every benign request completes with correct output —
//! instead of the global-rollback baseline that loses the victim (and,
//! on escalation, replays the whole service).

use indra::core::{
    IndraSystem, RecoveryLevel, RunState, SchemeKind, SchemeState, SystemConfig, SystemState,
};
use indra::fleet::{run_fleet, FleetConfig};
use indra::os::ARENA_BASE;
use indra::persist::{decode_snapshot, encode_snapshot, IngressKind, IngressRecord};
use indra::serve::engine::ShardRunner;
use indra::serve::EngineConfig;
use indra::workloads::{
    attack_request, benign_request, build_app_scaled, Attack, ServiceApp, UNMAPPED_ADDR,
};

const SCALE: u32 = 40;

fn system(compartments: bool) -> (IndraSystem, indra::isa::Image) {
    let cfg = SystemConfig {
        scheme: SchemeKind::Delta,
        monitoring: true,
        compartments,
        ..SystemConfig::default()
    };
    let image = build_app_scaled(ServiceApp::Httpd, SCALE);
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(&image).unwrap();
    (sys, image)
}

/// Delivers one request and runs the system to idle (serialized, like
/// the serve engine's drive discipline).
fn deliver(sys: &mut IndraSystem, data: Vec<u8>, malicious: bool) -> u64 {
    let id = sys.push_request(data, malicious);
    let mut budget = 200u32;
    loop {
        match sys.run(100_000) {
            RunState::Idle | RunState::Halted => break,
            RunState::BudgetExhausted => {
                budget -= 1;
                assert!(budget > 0, "request hung past the step budget");
            }
        }
    }
    id
}

/// Asserts the compartment machinery left no residue behind: every
/// per-request arena is torn down (pages unmapped, brk reset) and every
/// compartment tag on a dirty line belongs to a sealed (still
/// discardable) compartment or the current interval — a tag pointing at
/// a vanished compartment would be unreclaimable garbage.
fn assert_no_residue(state: &SystemState) {
    for p in &state.os.procs {
        assert!(p.arena_pages.is_empty(), "pid {}: leaked arena pages {:?}", p.pid, p.arena_pages);
        assert_eq!(p.arena_brk, ARENA_BASE, "pid {}: arena brk not reset", p.pid);
    }
    let SchemeState::Delta(d) = &state.scheme else {
        panic!("expected the delta scheme state");
    };
    for proc in &d.procs {
        let sealed: Vec<u64> = proc.seals.iter().map(|s| s.gts).collect();
        for page in &proc.pages {
            for &(gts, bits) in &page.hist {
                assert!(bits != 0, "vpn {:#x}: empty hist entry for gts {gts}", page.vpn);
                assert!(
                    sealed.contains(&gts) || gts == proc.gts,
                    "vpn {:#x}: line tags for gts {gts} outlive their compartment \
                     (sealed: {sealed:?}, current gts {})",
                    page.vpn,
                    proc.gts
                );
            }
        }
    }
}

#[test]
fn dormant_attack_is_discarded_with_zero_benign_loss() {
    let (mut sys, image) = system(true);
    let planter = attack_request(Attack::Dormant { addr: UNMAPPED_ADDR }, &image);

    let mut benign_sent = 0u64;
    let mut planter_id = 0u64;
    for i in 0..8u8 {
        if i == 2 {
            planter_id = deliver(&mut sys, planter.clone(), true);
        } else {
            benign_sent += 1;
            deliver(&mut sys, benign_request(i, 0x30 + i), false);
        }
    }

    let report = sys.report();
    assert_eq!(report.benign_served, benign_sent, "zero collateral loss: every benign served");
    let discard = report
        .detections
        .iter()
        .find(|d| d.discarded.is_some())
        .expect("the victim's fault must be attributed to a sealed compartment");
    assert_eq!(discard.discarded, Some(planter_id), "the planter's compartment is the suspect");
    assert!(discard.discarded_was_malicious, "ground truth agrees");
    assert!(discard.retried, "the innocent victim must be requeued, not dropped");
    assert_eq!(discard.level, RecoveryLevel::Micro, "healed without macro escalation");
    assert_no_residue(&sys.freeze());
}

#[test]
fn global_rollback_baseline_loses_the_benign_victim() {
    // The "before" picture the tentpole fixes: identical traffic with
    // compartments off loses at least the victim request.
    let (mut sys, image) = system(false);
    let planter = attack_request(Attack::Dormant { addr: UNMAPPED_ADDR }, &image);
    let mut benign_sent = 0u64;
    for i in 0..8u8 {
        if i == 2 {
            deliver(&mut sys, planter.clone(), true);
        } else {
            benign_sent += 1;
            deliver(&mut sys, benign_request(i, 0x30 + i), false);
        }
    }
    let report = sys.report();
    assert!(
        report.benign_served < benign_sent,
        "without compartments the dormant corruption must cost benign requests \
         ({} of {benign_sent} served)",
        report.benign_served
    );
    assert!(report.detections.iter().all(|d| d.discarded.is_none() && !d.retried));
}

#[test]
fn in_flight_attack_discards_nothing_and_neighbors_complete_correctly() {
    // A wild write faults inside the offending request itself; its own
    // writes are purged before suspect lookup, so no sealed compartment
    // may be blamed — and the benign neighbors' outputs stay correct.
    let (mut sys, image) = system(true);
    let wild = attack_request(Attack::WildWrite { addr: UNMAPPED_ADDR }, &image);
    let mut benign = 0u64;
    for i in 0..6u8 {
        if i == 3 {
            deliver(&mut sys, wild.clone(), true);
        } else {
            benign += 1;
            deliver(&mut sys, benign_request(i, 0x41), false);
        }
    }
    let report = sys.report();
    assert_eq!(report.benign_served, benign);
    assert!(!report.detections.is_empty(), "the wild write must be detected");
    for d in &report.detections {
        assert_eq!(d.discarded, None, "self-inflicted faults must not blame a neighbor");
    }
    for resp in sys.take_responses() {
        assert!(!resp.data.is_empty());
        assert_eq!(resp.data[1], 1, "txbuf fill pattern byte 1 survives recovery traffic");
    }
    assert_no_residue(&sys.freeze());
}

#[test]
fn attack_free_responses_and_cycles_identical_compartments_on_vs_off() {
    // Equivalence bar, single-cell flavor: compartment tracking costs
    // zero modelled cycles, so an attack-free run is indistinguishable.
    let run = |compartments: bool| {
        let (mut sys, _) = system(compartments);
        for i in 0..6u8 {
            deliver(&mut sys, benign_request(i, 0x22 + i), false);
        }
        let cycles = sys.service_cycles();
        let served = sys.report().served;
        let responses: Vec<Vec<u8>> = sys.take_responses().into_iter().map(|r| r.data).collect();
        (cycles, served, responses)
    };
    assert_eq!(run(true), run(false), "attack-free behavior must be bit-equal");
}

#[test]
fn attack_free_fleet_stats_byte_identical_compartments_on_vs_off() {
    // Equivalence bar, fleet flavor: the deterministic FleetStats JSON
    // must be byte-identical across the on/off matrix when no attacks
    // and no faults are injected.
    let base = FleetConfig {
        shards: 2,
        attack_per_mille: 0,
        fault_every: None,
        include_dormant_attacks: false,
        ..FleetConfig::quick()
    };
    let on = run_fleet(&FleetConfig { compartments: true, ..base.clone() });
    let off = run_fleet(&FleetConfig { compartments: false, ..base });
    assert_eq!(
        on.stats.to_json(),
        off.stats.to_json(),
        "attack-free fleet stats must not move when compartments toggle"
    );
}

#[test]
fn tombstoned_poison_request_leaves_no_tagged_pages_or_leaked_arena() {
    // Serve-engine quarantine × compartments: a tombstoned seq is never
    // delivered, and the surrounding traffic (attacks included) must
    // leave the engine with every arena torn down and no orphan
    // compartment tags.
    let cfg = EngineConfig { scale: 60, ..EngineConfig::default() };
    let image = build_app_scaled(cfg.app, cfg.scale);
    let dormant = attack_request(Attack::Dormant { addr: UNMAPPED_ADDR }, &image);
    let mut records = Vec::new();
    for seq in 0..6u64 {
        let malicious = seq == 1;
        let data =
            if malicious { dormant.clone() } else { benign_request(seq as u8, 0x55 + seq as u8) };
        records.push(IngressRecord {
            seq,
            kind: IngressKind::Request,
            request_id: seq,
            malicious,
            data,
        });
    }
    // Seq 3 was found poisonous on an earlier life: durable tombstone.
    records.push(IngressRecord {
        seq: 3,
        kind: IngressKind::Quarantine,
        request_id: 0,
        malicious: false,
        data: Vec::new(),
    });

    let (runner, fresh) = ShardRunner::from_log(cfg, 0, records, None).unwrap();
    assert!(fresh.is_empty(), "replayed traffic must not create new tombstones");
    let (state, cursor) = runner.freeze();
    assert_eq!(cursor, 6);
    assert_no_residue(&state);
    let out = runner.finish(true);
    assert_eq!(out.report.quarantined, vec![3], "the tombstone must be honored");
    assert_eq!(
        out.report.benign_served, 4,
        "all benign requests except the quarantined one are served"
    );
}

#[test]
fn frozen_compartment_state_roundtrips_through_the_snapshot_codec() {
    // Freeze mid-run with populated compartment fields (hist tags,
    // seals, last-load provenance, a live arena) and require the
    // persist codec to invert exactly.
    let (mut sys, image) = system(true);
    let planter = attack_request(Attack::Dormant { addr: UNMAPPED_ADDR }, &image);
    for i in 0..4u8 {
        if i == 1 {
            deliver(&mut sys, planter.clone(), true);
        } else {
            deliver(&mut sys, benign_request(i, 0x66), false);
        }
    }
    let state = sys.freeze();
    let SchemeState::Delta(d) = &state.scheme else { panic!("delta scheme") };
    assert!(
        d.procs.iter().any(|p| !p.seals.is_empty() && p.pages.iter().any(|pg| !pg.hist.is_empty())),
        "scenario must actually populate seals and hist tags"
    );
    let bytes = encode_snapshot(&state, b"compartments");
    let (back, progress) = decode_snapshot(&bytes).expect("decode");
    assert_eq!(back, state, "decode must invert encode on compartment state");
    assert_eq!(progress, b"compartments");
}
