//! Crash-safe fleet resume: the durable-checkpoint subsystem's headline
//! property is that a run killed mid-flight and resumed from disk
//! produces **byte-identical** deterministic stats to the run that was
//! never interrupted — and that no shape of on-disk damage short of a
//! corrupted base snapshot can make recovery panic.

use std::path::PathBuf;

use indra_core::SchemeKind;
use indra_fleet::{resume_fleet, run_fleet, FleetConfig};
use indra_workloads::ServiceApp;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("indra-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_fleet() -> FleetConfig {
    FleetConfig {
        shards: 2,
        apps: vec![ServiceApp::Bind, ServiceApp::Httpd],
        requests_per_shard: 10,
        fault_every: Some(4),
        scheme: SchemeKind::Delta,
        ..FleetConfig::quick()
    }
}

#[test]
fn killed_and_resumed_run_matches_uninterrupted() {
    let dir = scratch("crash-resume");
    let clean = run_fleet(&small_fleet());
    let clean_json = clean.stats.to_json();
    assert!(clean.stats.per_shard.iter().all(|s| s.completed), "baseline must finish");

    // Same fleet, checkpointing every 3 requests, each shard killed
    // dead right after its first durable checkpoint.
    let killed = run_fleet(&FleetConfig {
        checkpoint_every: 3,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        halt_after_checkpoints: Some(1),
        ..small_fleet()
    });
    assert!(
        killed.stats.per_shard.iter().all(|s| !s.completed),
        "every shard must die mid-flight for the test to mean anything"
    );
    assert!(killed.stats.served < clean.stats.served);

    let resumed = resume_fleet(&dir).expect("resume");
    assert_eq!(
        resumed.stats.to_json(),
        clean_json,
        "resumed stats must be byte-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointing_overhead_is_invisible_in_sim_time() {
    // `freeze` never mutates the system, so a checkpointed run must be
    // cycle-for-cycle identical to `--checkpoint-every 0` — stronger
    // than the <5% budget the acceptance criteria ask for.
    let dir = scratch("ckpt-overhead");
    let plain = run_fleet(&small_fleet());
    let checkpointed = run_fleet(&FleetConfig {
        checkpoint_every: 2,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..small_fleet()
    });
    assert_eq!(checkpointed.stats.to_json(), plain.stats.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_of_a_finished_run_replays_to_the_same_stats() {
    // A run that completed normally leaves its last checkpoint behind;
    // resuming it just replays the tail and lands on identical stats.
    let dir = scratch("finished-resume");
    let full = run_fleet(&FleetConfig {
        checkpoint_every: 4,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..small_fleet()
    });
    assert!(full.stats.per_shard.iter().all(|s| s.completed));
    let resumed = resume_fleet(&dir).expect("resume");
    assert_eq!(resumed.stats.to_json(), full.stats.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_of_a_missing_directory_is_a_typed_error() {
    let dir = scratch("no-such-store");
    let err = resume_fleet(&dir).expect_err("must not invent a fleet");
    // Any typed PersistError is acceptable; panicking is not.
    let _ = err.to_string();
}

#[test]
fn resume_with_a_missing_shard_directory_is_a_typed_error() {
    // A store whose fleet.meta promises N shards but whose shard-NNNN/
    // directory was deleted (partial copy, botched cleanup) must fail
    // with a typed, actionable error — not a panic, and not a silent
    // from-scratch rerun of the amputated shard.
    let dir = scratch("amputated-resume");
    let killed = run_fleet(&FleetConfig {
        checkpoint_every: 3,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        halt_after_checkpoints: Some(1),
        ..small_fleet()
    });
    assert!(killed.stats.served > 0);
    std::fs::remove_dir_all(dir.join("shard-0001")).expect("amputate shard 1");

    let err = resume_fleet(&dir).expect_err("a missing shard directory must be an error");
    assert!(
        matches!(err, indra_persist::PersistError::MissingShard { shard: 1 }),
        "expected MissingShard for shard 1, got: {err}"
    );
    assert!(err.to_string().contains("shard 1"), "the message names the missing shard: {err}");

    let _ = std::fs::remove_dir_all(&dir);
}
