//! The host fast paths (predecode cache, translation micro-cache) and
//! the superblock execution engine must be *invisible*: simulated
//! semantics, detection behaviour and the deterministic fleet stats are
//! byte-identical across every combination of the two engines, and no
//! stale predecoded instruction or translated block ever executes after
//! the code bytes underneath it change.
//!
//! The security-critical case is code injection onto a page that was
//! already executed (and therefore already sits decoded in the
//! predecode cache): the new bytes must be re-decoded and trip the
//! monitor exactly as on the pre-optimization path.

use indra::core::{FailureCause, IndraSystem, RunState, SystemConfig, ViolationKind};
use indra::fleet::{run_fleet, FleetConfig};
use indra::isa::{assemble, AluOp, Instruction, Reg};
use indra::sim::{CoreStep, Machine, MachineConfig};
use indra::workloads::{
    attack_request, benign_request, build_app_scaled, encode_request, injected_code_addr, Attack,
    ServiceApp, VULN_BUF_LEN,
};

/// A store to an already-executed, already-predecoded page must be
/// visible to the very next fetch: the overwritten word executes with
/// its *new* semantics, never the cached decode of the old bytes.
#[test]
fn overwritten_executable_page_executes_new_bytes() {
    let set = |imm: i32| {
        Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm }
            .encode()
            .expect("encodes")
    };
    let jr_ra =
        Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }.encode().expect("encodes");

    // `buf` lives in a writable data segment; pre-NX hardware executes
    // anything readable, so it is a writable *executable* page.
    let src = format!(
        "main:
    la s0, buf
    jalr s0
    mv s1, a0
    la t0, v2
    lw t1, 0(t0)
    sw t1, 0(s0)
    jalr s0
    halt
.data
buf: .word {v1_set:#010x}
    .word {jr_ra:#010x}
v2: .word {v2_set:#010x}
",
        v1_set = set(11),
        v2_set = set(22),
    );

    let mut m = Machine::new(MachineConfig::default());
    m.boot_asymmetric();
    m.set_monitoring(false);
    let img = assemble("selfmod", &src).expect("assembles");
    m.create_space(7);
    m.load_image(7, &img).expect("loads");
    m.core_mut(1).set_asid(7);
    m.core_mut(1).set_pc(img.entry);
    let mut steps = 0u32;
    while let CoreStep::Executed = m.step_core_simple(1) {
        steps += 1;
        assert!(steps < 10_000, "program must halt");
    }

    assert_eq!(m.core(1).reg(Reg::S1), 11, "first call runs the original bytes");
    assert_eq!(m.core(1).reg(Reg::A0), 22, "second call must execute the overwritten bytes");
}

/// Code injection aimed at a page that earlier injected code already
/// executed from (so its decodes were cached, then flushed by the
/// recovery quiesce and overwritten by the service's copy loop): the
/// second attack's different bytes must decode fresh and trip the
/// code-origin monitor exactly like the first.
#[test]
fn injection_on_previously_executed_page_still_trips_the_monitor() {
    let image = build_app_scaled(ServiceApp::Httpd, 15);
    // Only code-origin inspection on, so the detections below are
    // attributable to the injected *page* (the control-transfer checks
    // would otherwise flag the dispatch first).
    let mut cfg = SystemConfig::default();
    cfg.monitor.check_call_return = false;
    cfg.monitor.check_control_transfer = false;
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(&image).unwrap();

    // Second-wave shellcode: same landing address, different words than
    // `shellcode_words()` — a stale decode of wave one could not
    // reproduce this request's execution.
    let code_addr = injected_code_addr(&image);
    let wave2: Vec<u32> = [
        Instruction::Lui { rd: Reg::A0, imm: 0x2 },
        Instruction::AluImm { op: AluOp::Or, rd: Reg::A0, rs1: Reg::A0, imm: 0x2BAD },
        Instruction::Syscall { code: indra::os::syscall::SYS_EXIT },
    ]
    .iter()
    .map(|i| i.encode().expect("encodes"))
    .collect();
    let code_payload_off = 74usize;
    let mut payload = vec![0x42u8; code_payload_off + wave2.len() * 4];
    payload[VULN_BUF_LEN as usize..VULN_BUF_LEN as usize + 4]
        .copy_from_slice(&code_addr.to_le_bytes());
    for (i, word) in wave2.iter().enumerate() {
        payload[code_payload_off + i * 4..code_payload_off + i * 4 + 4]
            .copy_from_slice(&word.to_le_bytes());
    }
    let second_injection = encode_request(0, 0, VULN_BUF_LEN as u16 + 4, 0, &payload);

    sys.push_request(benign_request(0, 0x21), false);
    sys.push_request(attack_request(Attack::InjectedHandler, &image), true);
    sys.push_request(benign_request(1, 0x22), false);
    sys.push_request(second_injection, true);
    sys.push_request(benign_request(2, 0x23), false);
    let state = sys.run(600_000_000);
    assert_ne!(state, RunState::BudgetExhausted, "scenario must settle");

    let report = sys.report();
    assert_eq!(report.benign_served, 3, "well-behaved clients survive both waves");
    assert_eq!(report.true_detections(), 2, "both injections detected");
    assert_eq!(report.false_positives(), 0);
    let injections = report
        .detections
        .iter()
        .filter(|d| matches!(d.cause, FailureCause::Violation(ViolationKind::CodeInjection)))
        .count();
    assert_eq!(injections, 2, "both waves tripped the code-origin check: {:?}", report.detections);
}

/// A superblock translated over a hot writable page must die with the
/// bytes underneath it: after the store, batched dispatch re-translates
/// and the call executes the *new* semantics — never the pinned decode
/// of the old bytes.
#[test]
fn overwritten_block_retranslates_under_batch_dispatch() {
    let set = |imm: i32| {
        Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm }
            .encode()
            .expect("encodes")
    };
    let jr_ra =
        Instruction::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }.encode().expect("encodes");

    // Call `buf` far past the heat threshold so the superblock engine
    // translates and repeatedly hits a block over its bytes, then
    // overwrite the first word and call once more.
    let src = format!(
        "main:
    li s2, 40
warm:
    la s0, buf
    jalr s0
    mv s1, a0
    subi s2, s2, 1
    bnez s2, warm
    la t0, v2
    lw t1, 0(t0)
    sw t1, 0(s0)
    jalr s0
    halt
.data
buf: .word {v1_set:#010x}
    .word {jr_ra:#010x}
v2: .word {v2_set:#010x}
",
        v1_set = set(11),
        v2_set = set(22),
    );

    let mut m = Machine::new(MachineConfig::default());
    m.boot_asymmetric();
    m.set_monitoring(false);
    let img = assemble("selfmod-batch", &src).expect("assembles");
    m.create_space(7);
    m.load_image(7, &img).expect("loads");
    m.core_mut(1).set_asid(7);
    m.core_mut(1).set_pc(img.entry);
    let mut steps = 0u64;
    loop {
        let (step, executed) = m.step_core_batch_simple(1, u64::MAX);
        match step {
            CoreStep::Executed => {}
            CoreStep::Halted => break,
            other => panic!("program must run to halt, got {other:?}"),
        }
        steps += executed.max(1);
        assert!(steps < 10_000, "program must halt");
    }

    assert_eq!(m.core(1).reg(Reg::S1), 11, "warm calls run the original bytes");
    assert_eq!(m.core(1).reg(Reg::A0), 22, "the post-store call must execute the new bytes");
    let sb = m.superblock_stats(1);
    assert!(sb.translations > 0, "the warm loop must have translated blocks");
    assert!(
        sb.invalidations > 0 || sb.exit_self_modified > 0,
        "the store into translated code must invalidate or exit the block: {sb:?}"
    );
}

/// Forcing the slow reference paths on a mixed fleet workload — attacks
/// and fault injection included — must leave the deterministic stats
/// JSON byte-identical across the full 2x2 engine matrix (predecode /
/// translation fast paths x superblock batching). Six shards pick up
/// every service app round-robin, so all six workloads are covered.
#[test]
fn engine_matrix_is_byte_identical() {
    let base = FleetConfig {
        shards: 6,
        requests_per_shard: 10,
        scale: 40,
        attack_per_mille: 250,
        fault_every: Some(6),
        seed: 0xFA57_BEEF,
        ..FleetConfig::default()
    };
    let reference =
        run_fleet(&FleetConfig { fast_paths: false, superblocks: false, ..base.clone() });
    for (fast_paths, superblocks) in [(false, true), (true, false), (true, true)] {
        let run = run_fleet(&FleetConfig { fast_paths, superblocks, ..base.clone() });
        assert_eq!(
            run.stats, reference.stats,
            "fast_paths={fast_paths} superblocks={superblocks} diverged from the reference"
        );
        assert_eq!(
            run.stats.to_json(),
            reference.stats.to_json(),
            "stats JSON must be byte-identical (fast_paths={fast_paths} superblocks={superblocks})"
        );
    }
}
