//! Integration tests of the parallel fleet executor: the determinism
//! contract (same config ⇒ byte-identical aggregated stats, regardless
//! of thread scheduling) and the dependability claim (under a live
//! attack mix the fleet detects every exploit while benign service
//! stays up).

use indra::fleet::{run_fleet, FleetConfig};

fn test_config() -> FleetConfig {
    FleetConfig {
        shards: 4,
        requests_per_shard: 10,
        scale: 40,
        attack_per_mille: 200,
        seed: 0xF1EE7,
        ..FleetConfig::default()
    }
}

/// Same seed and shard count ⇒ the aggregated deterministic stats (and
/// their JSON rendering) are byte-identical across runs, even though
/// shards race on OS threads and samples arrive in scheduler order.
#[test]
fn fleet_report_is_deterministic() {
    let cfg = test_config();
    let a = run_fleet(&cfg);
    let b = run_fleet(&cfg);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stats.to_json(), b.stats.to_json());
    // And the per-shard traffic really differed shard to shard (the
    // derived seeds did their job).
    let sents: Vec<u64> = a.stats.per_shard.iter().map(|s| s.attacks_sent).collect();
    assert_eq!(sents.iter().sum::<u64>(), a.stats.attacks_sent);
}

/// A different master seed produces different traffic (the seed is not
/// being ignored somewhere down the stack).
#[test]
fn fleet_seed_actually_matters() {
    let cfg = test_config();
    let reseeded = FleetConfig { seed: cfg.seed ^ 0xDEAD_BEEF, ..cfg.clone() };
    let a = run_fleet(&cfg);
    let b = run_fleet(&reseeded);
    // Arrival schedules and attack draws differ, so *some* deterministic
    // aggregate must move; total latency mass is the most sensitive.
    assert_ne!(
        (a.stats.latency.count, a.stats.latency.mean, a.stats.total_shard_cycles),
        (b.stats.latency.count, b.stats.latency.mean, b.stats.total_shard_cycles),
        "independent seeds produced identical fleets"
    );
}

/// With a live attack mix, every shard completes its schedule, every
/// injected attack is detected (and recovered from), and the fleet-wide
/// benign-service ratio stays above a floor.
#[test]
fn fleet_survives_attack_wave() {
    let cfg = FleetConfig { shards: 6, attack_per_mille: 250, ..test_config() };
    let report = run_fleet(&cfg);
    let s = &report.stats;

    assert!(s.attacks_sent > 0, "mix must actually contain attacks");
    assert_eq!(s.true_detections, s.attacks_sent, "every injected attack must be detected: {s}");
    assert!(s.detections >= s.true_detections);
    assert!(s.benign_service_ratio > 0.9, "benign service collapsed under attack: {s}");
    for shard in &s.per_shard {
        assert!(shard.completed, "shard {} did not finish its schedule", shard.shard);
        assert_eq!(shard.true_detections, shard.attacks_sent, "shard {}", shard.shard);
    }
    assert_eq!(s.served, s.latency.count, "every served request must be sampled");
    assert!(s.latency.p50 <= s.latency.p95 && s.latency.p95 <= s.latency.p99);
}

/// Injected hardware faults are recovered and accounted without
/// breaking benign service.
#[test]
fn fleet_recovers_injected_faults() {
    let cfg = FleetConfig { shards: 2, attack_per_mille: 0, fault_every: Some(4), ..test_config() };
    let report = run_fleet(&cfg);
    let s = &report.stats;
    assert!(s.faults_injected > 0, "harness must have injected faults");
    assert_eq!(s.detections, s.faults_injected, "each fault is one recovery episode: {s}");
    assert_eq!(s.true_detections, 0, "faults are not attacks");
    assert!(s.benign_service_ratio > 0.9, "faults must not sink benign service: {s}");
}
