//! Self-healing fleet supervision: chaos-injected crashes, hangs, WAL
//! tears and poison requests must all be survived — and every revival
//! must replay from its checkpoint so exactly that the deterministic
//! fleet stats come out **byte-identical** to a run nothing ever
//! touched.

use std::path::PathBuf;

use indra_fleet::{
    run_fleet, run_fleet_supervised, ChaosConfig, FleetConfig, FleetReport, SupervisorConfig,
};
use indra_workloads::ServiceApp;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("indra-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_fleet() -> FleetConfig {
    FleetConfig {
        shards: 2,
        apps: vec![ServiceApp::Bind, ServiceApp::Httpd],
        requests_per_shard: 10,
        ..FleetConfig::quick()
    }
}

/// `small_fleet`, checkpointing into `dir` so revival really replays
/// from disk.
fn checkpointed_fleet(dir: &std::path::Path) -> FleetConfig {
    FleetConfig {
        checkpoint_every: 3,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..small_fleet()
    }
}

fn supervised(cfg: &FleetConfig, profile: &str) -> FleetReport {
    let sup = SupervisorConfig {
        chaos: ChaosConfig::profile(profile).expect("known profile"),
        ..SupervisorConfig::default()
    };
    run_fleet_supervised(cfg, &sup)
}

#[test]
fn chaos_kills_revive_to_byte_identical_stats() {
    let baseline = run_fleet(&small_fleet()).stats.to_json();

    let dir = scratch("sup-kills");
    let report = supervised(&checkpointed_fleet(&dir), "kills");
    let sup = report.supervision.as_ref().expect("supervised run");

    assert!(sup.revivals > 0, "the kills profile must actually kill something");
    assert_eq!(sup.crashes, sup.revivals, "every chaos kill dies by panic");
    assert_eq!(sup.hangs, 0);
    assert_eq!(sup.abandoned_shards, 0);
    assert_eq!(sup.quarantined_requests, 0);
    assert!((sup.availability - 1.0).abs() < 1e-12, "nothing may be lost to revival");
    assert_eq!(
        report.stats.to_json(),
        baseline,
        "checkpoint revival must replay to byte-identical deterministic stats"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_tear_recovers_from_the_valid_journal_prefix() {
    let baseline = run_fleet(&small_fleet()).stats.to_json();

    let dir = scratch("sup-wal");
    let report = supervised(&checkpointed_fleet(&dir), "wal");
    let sup = report.supervision.as_ref().expect("supervised run");

    assert!(sup.revivals > 0, "the wal profile must tear at least one journal");
    assert_eq!(sup.abandoned_shards, 0, "a torn tail must never strand a shard");
    assert_eq!(
        report.stats.to_json(),
        baseline,
        "longest-valid-prefix recovery plus deterministic replay must reconverge"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hung_shard_is_cancelled_and_revived() {
    let baseline = run_fleet(&small_fleet()).stats.to_json();

    let dir = scratch("sup-stall");
    let sup_cfg = SupervisorConfig {
        chaos: ChaosConfig::profile("stalls").expect("known profile"),
        // Short deadline so the test stays fast; still far beyond one
        // debug-build run slice, so healthy shards never false-trip it.
        deadline_ms: 2_000,
        ..SupervisorConfig::default()
    };
    let report = run_fleet_supervised(&checkpointed_fleet(&dir), &sup_cfg);
    let sup = report.supervision.as_ref().expect("supervised run");

    assert!(sup.hangs > 0, "the stalls profile must hang at least one shard");
    assert_eq!(sup.crashes, 0, "stalls never panic");
    assert_eq!(sup.abandoned_shards, 0);
    assert_eq!(
        report.stats.to_json(),
        baseline,
        "a cancelled zombie must be replaced by an exact checkpoint replay"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poison_request_is_quarantined_and_reproducible() {
    let dir_a = scratch("sup-poison-a");
    let a = supervised(&checkpointed_fleet(&dir_a), "poison");
    let dir_b = scratch("sup-poison-b");
    let b = supervised(&checkpointed_fleet(&dir_b), "poison");

    let sup = a.supervision.as_ref().expect("supervised run");
    assert_eq!(sup.quarantined_requests, 1, "the poison request must be quarantined");
    assert_eq!(sup.per_shard[0].quarantined.len(), 1, "poison targets shard 0");
    assert_eq!(
        sup.per_shard[0].crashes, 2,
        "exactly two strikes before the repeat offender is identified"
    );
    assert!(sup.availability < 1.0, "a quarantined request counts against availability");
    assert!(
        a.stats.per_shard.iter().all(|s| s.completed),
        "quarantine must unblock the shard, not strand it"
    );

    // Same seeds, fresh store: byte-identical stats and identical
    // supervision counts — the whole point of planned chaos.
    assert_eq!(a.stats.to_json(), b.stats.to_json());
    let bs = b.supervision.as_ref().expect("supervised run");
    assert_eq!(sup.revivals, bs.revivals);
    assert_eq!(sup.crashes, bs.crashes);
    assert_eq!(sup.quarantined_requests, bs.quarantined_requests);
    assert_eq!(sup.per_shard[0].quarantined, bs.per_shard[0].quarantined);

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn exhausted_revival_budget_abandons_the_shard_but_finishes_the_fleet() {
    let sup_cfg = SupervisorConfig {
        chaos: ChaosConfig::profile("kills").expect("known profile"),
        max_revivals: 0,
        ..SupervisorConfig::default()
    };
    // No checkpoint store: abandonment salvage must degrade to an
    // empty report without panicking.
    let report = run_fleet_supervised(&small_fleet(), &sup_cfg);
    let sup = report.supervision.as_ref().expect("supervised run");

    assert!(sup.abandoned_shards > 0, "a zero budget must abandon the first death");
    assert_eq!(sup.revivals, 0);
    assert!(sup.availability < 1.0, "abandonment loses that shard's remaining requests");
    assert!(
        report
            .stats
            .per_shard
            .iter()
            .zip(&sup.per_shard)
            .all(|(s, p)| !p.abandoned || !s.completed),
        "abandoned shards must stay visible as incomplete, never silently dropped"
    );
}

#[test]
fn supervision_without_chaos_matches_the_plain_executor() {
    let cfg = small_fleet();
    let plain = run_fleet(&cfg);
    let report = run_fleet_supervised(&cfg, &SupervisorConfig::default());
    let sup = report.supervision.as_ref().expect("supervised run");

    assert_eq!(report.stats.to_json(), plain.stats.to_json());
    assert_eq!(sup.revivals + sup.crashes + sup.hangs + sup.harness_errors, 0);
    assert!((sup.availability - 1.0).abs() < 1e-12);
    // The supervision block shows up in the outer report JSON; the
    // plain executor's stays null.
    assert!(report.to_json().contains("\"supervision\":{"));
    assert!(plain.to_json().contains("\"supervision\":null"));
}
