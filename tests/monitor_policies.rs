//! §3.2's corner cases as end-to-end tests: setjmp/longjmp flows
//! (§3.2.1), declared dynamic/self-modifying code (§3.2.2), and the
//! difference between declared and undeclared runtime code generation.

use indra::core::{FailureCause, IndraSystem, RunState, SystemConfig, ViolationKind};
use indra::isa::assemble;

/// A service whose handler aborts deep call nesting with a longjmp-style
/// computed jump back to a registered recovery point.
const LONGJMP_SERVICE: &str = "
main:
    la  s0, buf
loop:
    mv  a0, s0
    li  a1, 64
    syscall 1            # net_recv
    la  t9, landing      # 'setjmp': record the recovery point
    addi t9, t9, 4       # ...landing pad proper (past the nop below)
    call level1
landing:                 # label itself is a function symbol; the actual
    nop                  # longjmp pad is landing+4, which only the app's
    mv  a0, s0           # explicit registration can legitimize
    li  a1, 8
    syscall 2            # net_send
    j loop

level1:
    addi sp, sp, -4
    sw  ra, 0(sp)
    call level2
    lw  ra, 0(sp)
    addi sp, sp, 4
    ret

level2:
    # abandon the whole call chain: computed jump to the landing pad
    jr  t9

.data
buf: .space 64
";

#[test]
fn longjmp_to_registered_target_is_clean() {
    let image = assemble("lj", LONGJMP_SERVICE).unwrap();
    let landing_pad = image.addr_of("landing").unwrap() + 4;
    let mut sys = IndraSystem::new(SystemConfig::default());
    sys.deploy(&image).unwrap();
    sys.register_longjmp_targets(&[landing_pad]);

    for i in 0..4u8 {
        sys.push_request(vec![i; 4], false);
    }
    let state = sys.run(10_000_000);
    assert_eq!(state, RunState::Idle);
    assert_eq!(sys.report().benign_served, 4);
    assert!(
        sys.report().detections.is_empty(),
        "registered longjmp flow must not trip the monitor: {:?}",
        sys.report().detections
    );
}

#[test]
fn longjmp_without_registration_is_flagged() {
    // The identical program, but the application never declared its
    // setjmp site — the computed jump is an invalid indirect target.
    let image = assemble("lj", LONGJMP_SERVICE).unwrap();
    let mut sys = IndraSystem::new(SystemConfig::default());
    sys.deploy(&image).unwrap();
    sys.push_request(vec![1; 4], false);
    let state = sys.run(10_000_000);
    assert_ne!(state, RunState::BudgetExhausted);
    assert!(sys
        .report()
        .detections
        .iter()
        .any(|d| matches!(d.cause, FailureCause::Violation(ViolationKind::InvalidIndirectTarget))));
}

/// A JIT-style service: writes a tiny function (li a0, 99; ret) into its
/// declared dynamic-code region, then calls it.
const JIT_SERVICE: &str = "
    .dyncode 1           # declare one page of dynamic code (0x10003000)
main:
    la  s0, buf
loop:
    mv  a0, s0
    li  a1, 64
    syscall 1            # net_recv

    # emit `addi a0, zero, 99` (0x10800063) and `jalr zero, ra, 0`
    la  t0, dynbase
    lw  t0, 0(t0)
    li  t1, 0x10800063
    sw  t1, 0(t0)
    li  t1, 0x84010000
    sw  t1, 4(t0)
    jalr t0              # call the freshly generated code

    mv  a0, s0
    li  a1, 4
    syscall 2
    j loop
.data
buf: .space 64
dynbase: .word 0
";

fn jit_image(dyn_base: u32) -> indra::isa::Image {
    let mut img = assemble("jit", JIT_SERVICE).unwrap();
    // Patch `dynbase` with the real dynamic-region address.
    let sym = img.addr_of("dynbase").unwrap();
    let seg = img.segments.iter_mut().find(|s| s.name == ".data").unwrap();
    let off = (sym - seg.vaddr) as usize;
    seg.data[off..off + 4].copy_from_slice(&dyn_base.to_le_bytes());
    img
}

#[test]
fn declared_dynamic_code_is_allowed() {
    // Verify the emitted words actually are the intended instructions.
    use indra::isa::{AluOp, Instruction, Reg};
    assert_eq!(
        Instruction::decode(0x1080_0063).unwrap(),
        Instruction::AluImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 99 }
    );
    assert_eq!(Instruction::decode(0x8401_0000).unwrap(), Instruction::ret());

    let probe = assemble("jit", JIT_SERVICE).unwrap();
    let (dyn_base, dyn_size) = probe.dynamic_code_regions[0];
    assert!(dyn_size >= 4096);
    let image = jit_image(dyn_base);

    let mut sys = IndraSystem::new(SystemConfig::default());
    sys.deploy(&image).unwrap();
    sys.push_request(vec![7; 4], false);
    let state = sys.run(10_000_000);
    assert_eq!(state, RunState::Idle, "{:?}", sys.report().detections);
    assert_eq!(sys.report().benign_served, 1);
    assert!(
        sys.report().detections.is_empty(),
        "declared dynamic code must pass code-origin inspection: {:?}",
        sys.report().detections
    );
}

#[test]
fn undeclared_runtime_code_is_code_injection() {
    // The same JIT, but pointed at its ordinary data buffer instead of
    // the declared region: the monitor must flag the fetch.
    let probe = assemble("jit", JIT_SERVICE).unwrap();
    let buf = probe.addr_of("buf").unwrap();
    let image = jit_image(buf);

    let mut sys = IndraSystem::new(SystemConfig::default());
    sys.deploy(&image).unwrap();
    sys.push_request(vec![7; 4], false);
    let state = sys.run(10_000_000);
    assert_ne!(state, RunState::BudgetExhausted);
    assert!(
        sys.report().detections.iter().any(|d| matches!(
            d.cause,
            FailureCause::Violation(
                ViolationKind::CodeInjection | ViolationKind::InvalidIndirectTarget
            )
        )),
        "undeclared generated code must be flagged: {:?}",
        sys.report().detections
    );
}
