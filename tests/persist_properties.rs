//! Property tests for the snapshot codec, driven by [`indra_rng::forall`]:
//! encode→decode is the identity on real frozen systems, encoding is
//! deterministic (equal states → equal bytes), and any single-byte
//! corruption of a snapshot file is caught by a section CRC — decode
//! returns a typed error, never a panic and never silently-wrong state.

use indra_core::{IndraSystem, SchemeKind, SystemConfig, SystemState};
use indra_persist::{decode_snapshot, encode_snapshot, PersistError};
use indra_rng::{forall, Rng};
use indra_workloads::{build_app_scaled, detectable_attack_suite, OpenLoopTraffic, ServiceApp};

/// Freezes a real system after a randomized amount of service: random
/// app, scheme, request count and traffic seed.
fn random_frozen_system(rng: &mut Rng) -> SystemState {
    let app = ServiceApp::ALL[rng.range_usize(0, ServiceApp::ALL.len())];
    let scheme = [SchemeKind::Delta, SchemeKind::VirtualCheckpoint, SchemeKind::UndoLog]
        [rng.range_usize(0, 3)];
    let image = build_app_scaled(app, 40);
    let schedule = OpenLoopTraffic::with_attack_mix(
        rng.range_u32(1, 4),
        detectable_attack_suite(&image),
        rng.range_u32(0, 400),
        10_000,
        rng.next_u64(),
    )
    .generate(&image);

    let mem = indra_mem::CoreMemConfig {
        il1: indra_mem::CacheConfig { size: 1024, line: 32, ways: 1, hit_latency: 1 },
        dl1: indra_mem::CacheConfig { size: 1024, line: 32, ways: 1, hit_latency: 1 },
        l2: indra_mem::CacheConfig { size: 4096, line: 64, ways: 2, hit_latency: 8 },
        itlb: indra_mem::TlbConfig { entries: 16, ways: 2, miss_penalty: 30 },
        dtlb: indra_mem::TlbConfig { entries: 16, ways: 2, miss_penalty: 30 },
    };
    let mut sys = IndraSystem::new(SystemConfig {
        machine: indra_sim::MachineConfig { mem, ..indra_sim::MachineConfig::default() },
        scheme,
        monitoring: true,
        ..SystemConfig::default()
    });
    sys.deploy(&image).expect("deploy");
    for r in schedule {
        sys.push_request(r.data, r.malicious);
    }
    let _ = sys.run(rng.range_u64(100_000, 1_500_000));
    sys.freeze()
}

#[test]
fn snapshot_roundtrip_is_identity_and_encoding_is_deterministic() {
    forall("persist-snapshot-roundtrip", 4, |rng| {
        let state = random_frozen_system(rng);
        let progress: Vec<u8> = (0..rng.range_usize(0, 40)).map(|_| rng.gen_u8()).collect();

        let bytes = encode_snapshot(&state, &progress);
        let (back, progress_back) = decode_snapshot(&bytes).expect("decode");
        assert_eq!(back, state, "decode must invert encode exactly");
        assert_eq!(progress_back, progress);

        // Determinism: re-encoding the decoded state reproduces the
        // file byte for byte.
        assert_eq!(encode_snapshot(&back, &progress_back), bytes);
    });
}

#[test]
fn single_byte_corruption_is_always_rejected() {
    // One real snapshot, many random single-byte corruptions: every one
    // must decode to a typed error — magic, version, length, CRC and
    // payload bytes are all covered.
    let mut seed_rng = Rng::seed_from_u64(0x5eed_cafe);
    let state = random_frozen_system(&mut seed_rng);
    let bytes = encode_snapshot(&state, b"cursor");

    forall("persist-crc-rejects-corruption", 64, |rng| {
        let mut damaged = bytes.clone();
        let idx = rng.range_usize(0, damaged.len());
        let bit = 1u8 << rng.range_u32(0, 8);
        damaged[idx] ^= bit;
        match decode_snapshot(&damaged) {
            Err(
                PersistError::BadMagic { .. }
                | PersistError::UnsupportedVersion { .. }
                | PersistError::ChecksumMismatch { .. }
                | PersistError::Truncated { .. }
                | PersistError::Corrupt { .. },
            ) => {}
            Err(other) => panic!("unexpected error class at byte {idx}: {other}"),
            Ok(_) => panic!("corruption at byte {idx} (bit {bit:#04x}) decoded cleanly"),
        }
    });
}
