//! Crash-recovery torture: no shape of journal damage — truncation at
//! any byte offset of the tail record, or a flipped CRC-covered byte —
//! may ever panic recovery. It must either resume from the last valid
//! record or return a typed [`indra_persist::PersistError`].

use std::fs;
use std::path::PathBuf;

use indra_core::{IndraSystem, SchemeKind, SystemConfig, SystemState};
use indra_persist::{read_journal, PersistError, SnapshotStore};
use indra_workloads::{build_app_scaled, detectable_attack_suite, OpenLoopTraffic, ServiceApp};

const SCALE: u32 = 40;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("indra-{}-{}", tag, std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Three successive frozen states of one real system, each separated by
/// served requests (so the deltas between them are non-trivial).
fn three_real_states() -> Vec<SystemState> {
    let image = build_app_scaled(ServiceApp::Bind, SCALE);
    let schedule = OpenLoopTraffic::with_attack_mix(
        6,
        detectable_attack_suite(&image),
        250,
        10_000,
        0x7041_73e5,
    )
    .generate(&image);

    // A deliberately tiny cache hierarchy: the wire format is identical,
    // but the small-state blob shrinks from ~270 KB to a few KB, which
    // keeps the truncate-at-every-byte-offset loop fast.
    let mem = indra_mem::CoreMemConfig {
        il1: indra_mem::CacheConfig { size: 1024, line: 32, ways: 1, hit_latency: 1 },
        dl1: indra_mem::CacheConfig { size: 1024, line: 32, ways: 1, hit_latency: 1 },
        l2: indra_mem::CacheConfig { size: 4096, line: 64, ways: 2, hit_latency: 8 },
        itlb: indra_mem::TlbConfig { entries: 16, ways: 2, miss_penalty: 30 },
        dtlb: indra_mem::TlbConfig { entries: 16, ways: 2, miss_penalty: 30 },
    };
    let mut sys = IndraSystem::new(SystemConfig {
        machine: indra_sim::MachineConfig { mem, ..indra_sim::MachineConfig::default() },
        scheme: SchemeKind::Delta,
        monitoring: true,
        ..SystemConfig::default()
    });
    sys.deploy(&image).expect("deploy");

    let mut states = Vec::new();
    let mut queue = schedule.into_iter();
    for _ in 0..3 {
        for r in queue.by_ref().take(2) {
            sys.push_request(r.data, r.malicious);
        }
        let _ = sys.run(2_000_000);
        states.push(sys.freeze());
    }
    assert!(states[2].report.served > 0, "the system must actually serve requests");
    assert_ne!(states[0], states[1]);
    assert_ne!(states[1], states[2]);
    states
}

/// Byte offset where the journal's tail record starts (header is 16
/// bytes; each record is an 8-byte length+CRC prefix plus its payload).
fn tail_record_start(journal: &[u8], records: usize) -> usize {
    let mut off = 16;
    for _ in 0..records - 1 {
        let len = u32::from_le_bytes(journal[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
    }
    off
}

#[test]
fn journal_survives_truncation_at_every_tail_byte_and_crc_flips() {
    let dir = scratch("persist-torture");
    let states = three_real_states();

    let store = SnapshotStore::create(&dir).expect("store");
    let mut w = store.shard_writer(0).expect("writer");
    for (i, s) in states.iter().enumerate() {
        w.checkpoint(s, &[i as u8]).expect("checkpoint");
    }

    let shard_dir = store.shard_dir(0);
    let base_bytes = fs::read(shard_dir.join("base.snap")).expect("base");
    let journal = fs::read(shard_dir.join("journal.wal")).expect("journal");
    let base_id = indra_persist::crc32(&base_bytes);

    let full = read_journal(&journal, base_id).expect("intact journal");
    assert_eq!(full.len(), 2, "base + two delta records");
    let tail_start = tail_record_start(&journal, 2);
    assert!(tail_start < journal.len());

    // 1. Truncate at EVERY byte offset of the tail record: recovery must
    //    come back with exactly the first record, never panic, never err.
    for cut in tail_start..journal.len() {
        let recs =
            read_journal(&journal[..cut], base_id).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        assert_eq!(recs.len(), 1, "cut at {cut} must fall back to the first record");
        assert_eq!(recs[0].seq, 1);
    }

    // 2. Flip a CRC-covered byte in the tail record's payload: the scan
    //    must stop at the last good record.
    let mut flipped = journal.clone();
    let mid = tail_start + 8 + (journal.len() - tail_start - 8) / 2;
    flipped[mid] ^= 0x40;
    let recs = read_journal(&flipped, base_id).expect("flip must not error the prefix");
    assert_eq!(recs.len(), 1);

    // 3. Same flip, end-to-end through the store: recovery lands on the
    //    middle checkpoint (state 1), not garbage and not a panic.
    fs::write(shard_dir.join("journal.wal"), &flipped).expect("write damaged journal");
    let loaded = store.load_shard(0).expect("load").expect("present");
    assert_eq!(loaded.seq, 1);
    assert_eq!(loaded.state, states[1]);
    assert_eq!(loaded.progress, vec![1]);

    // 4. Truncation end-to-end at a few representative offsets,
    //    including mid-prefix and mid-payload.
    for cut in [tail_start, tail_start + 3, tail_start + 8, mid, journal.len() - 1] {
        fs::write(shard_dir.join("journal.wal"), &journal[..cut]).expect("write torn journal");
        let loaded = store.load_shard(0).expect("load").expect("present");
        assert_eq!(loaded.seq, 1, "cut at {cut}");
        assert_eq!(loaded.state, states[1], "cut at {cut}");
    }

    // 5. A missing journal falls back to the base snapshot.
    fs::remove_file(shard_dir.join("journal.wal")).expect("rm journal");
    let loaded = store.load_shard(0).expect("load").expect("present");
    assert_eq!(loaded.seq, 0);
    assert_eq!(loaded.state, states[0]);

    // 6. A flipped byte in the base snapshot is a typed checksum error —
    //    the base is written atomically, so damage there is real
    //    corruption, not a crash artifact.
    let mut bad_base = base_bytes.clone();
    let idx = bad_base.len() / 2;
    bad_base[idx] ^= 0x01;
    fs::write(shard_dir.join("base.snap"), &bad_base).expect("write damaged base");
    match store.load_shard(0) {
        Err(PersistError::ChecksumMismatch { .. }) => {}
        other => panic!("damaged base must be a checksum error, got {other:?}"),
    }

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_journal_from_an_older_base_is_ignored() {
    // Crash between rewriting base.snap and resetting the journal: the
    // journal's base_id no longer matches, so its records must NOT be
    // replayed onto the new base.
    let dir = scratch("persist-stale");
    let states = three_real_states();

    let store = SnapshotStore::create(&dir).expect("store");
    let mut w = store.shard_writer(0).expect("writer");
    for s in &states {
        w.checkpoint(s, b"x").expect("checkpoint");
    }
    let shard_dir = store.shard_dir(0);
    let old_journal = fs::read(shard_dir.join("journal.wal")).expect("journal");

    // Simulate the torn rewrite: a fresh writer rewrites the base, then
    // "crashes" before its journal reset survives — restore the old one.
    let mut w2 = store.shard_writer(0).expect("writer 2");
    w2.checkpoint(&states[2], b"y").expect("rewrite base");
    fs::write(shard_dir.join("journal.wal"), &old_journal).expect("restore stale journal");

    let loaded = store.load_shard(0).expect("load").expect("present");
    assert_eq!(loaded.seq, 0, "stale records must be ignored");
    assert_eq!(loaded.state, states[2]);
    assert_eq!(loaded.progress, b"y");

    let _ = fs::remove_dir_all(&dir);
}
