//! Red-team regression corpus replay.
//!
//! Every fixture under `corpus/redteam/` is a payload the campaign
//! minimized, committed together with the outcome class it produced.
//! This gate re-evaluates each one in a fresh harness and fails if the
//! framework's behavior drifted — a detection getting *slower* (or an
//! undetected payload getting caught) is a regression either way, in
//! opposite directions.

use indra::redteam::{replay, AttackFamily, CauseClass, Evaluator, Fixture, Genome};

fn corpus() -> Vec<(String, Fixture)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus/redteam");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus/redteam exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "committed corpus must not be empty");
    entries
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable fixture");
            let fixture =
                Fixture::parse(&text).unwrap_or_else(|e| panic!("{name}: malformed: {e}"));
            (name, fixture)
        })
        .collect()
}

#[test]
fn every_committed_fixture_replays_to_its_pinned_outcome() {
    for (name, fixture) in corpus() {
        let (score, failures) = replay(&fixture);
        assert!(failures.is_empty(), "{name}: {failures:?} (score {score:?})");
    }
}

#[test]
fn corpus_keeps_an_undetected_or_late_detected_payload() {
    // The campaign's reason to exist: at least one committed payload
    // must defeat or outrun detection — undetected outright, or caught
    // only after substantial work (≥ 10 K instructions into the
    // request, far beyond the shadow stack's few-hundred-insn
    // reaction).
    let fixtures = corpus();
    let qualifying = fixtures.iter().filter(|(name, f)| {
        let (score, _) = replay(f);
        let late = score.detected && score.insns_into_request >= 10_000;
        let never = !score.detected;
        if never || late {
            println!(
                "{name}: {} ({} insns)",
                if never { "undetected" } else { "late-detected" },
                score.insns_into_request
            );
        }
        never || late
    });
    assert!(qualifying.count() >= 1, "no undetected or late-detected payload in the corpus");
}

#[test]
fn corpus_spans_multiple_attack_families() {
    let families: std::collections::BTreeSet<&'static str> =
        corpus().iter().map(|(_, f)| f.genome.family().as_str()).collect();
    assert!(families.len() >= 3, "corpus must cover ≥ 3 attack families, has {families:?}");
    for must in [AttackFamily::JopChain, AttackFamily::RopRet] {
        assert!(families.contains(must.as_str()), "missing {must} fixture");
    }
}

#[test]
fn jop_plant_is_a_validated_in_policy_hijack() {
    // The dynamic validation the gadget finder's static claim rests on:
    // the planted dispatch executes under the *tightened* policy with
    // zero monitor violations — the hijack is monitor-approved, and the
    // planted slot provably holds a registered target afterwards.
    let (_, fixture) = corpus()
        .into_iter()
        .find(|(_, f)| f.genome.family() == AttackFamily::JopChain)
        .expect("a jop_chain fixture is committed");
    let Genome::JopChain { ref slots, target, .. } = fixture.genome else {
        unreachable!("family filter");
    };

    let eval = Evaluator::new(fixture.eval_config());
    let registered = indra::analyze::tighten(eval.image()).indirect_targets;
    let planted =
        eval.image().addr_of(&format!("handler_{}", target & 3)).expect("service handler symbol");
    assert!(registered.contains(&planted), "the planted value is in the tightened policy");
    assert!(!slots.is_empty());

    let (score, failures) = replay(&fixture);
    assert!(failures.is_empty(), "{failures:?}");
    assert!(!score.detected, "in-policy plant must pass every inspection: {score:?}");
    assert_eq!(score.cause, CauseClass::None);
    assert!(score.writes_landed >= 1, "the dispatch-table overwrite survived recovery: {score:?}");
    assert!(
        score.policy_checks_passed >= 1,
        "the hijacked dispatch was checked and approved: {score:?}"
    );
}
