//! Acceptance lock for the replica subsystem's headline property:
//! a stealth guest-memory corruption that the monitoring layer never
//! sees IS detected by divergence voting at K >= 2, the divergent
//! replica is revived from the majority checkpoint, and the final
//! deterministic `FleetStats` are byte-identical to a chaos-free run —
//! replication masks the fault completely instead of merely reporting
//! it.
//!
//! Also pins the first stealth payload itself (the exact monitor-blind
//! bit flip the quick profile draws) as a regression fixture, so a
//! future change to the chaos planner or the monitor that would make
//! the payload visible — or voting blind — fails loudly here.

use indra_fleet::{plan_for_shard, shard_schedule, ChaosConfig, FleetConfig, FleetReport};
use indra_replica::{run_fleet_replicated, ReplicaCell, ReplicaOptions};

fn tiny() -> FleetConfig {
    FleetConfig { shards: 2, requests_per_shard: 6, ..FleetConfig::quick() }
}

fn run(replicas: usize, rejuvenate_every: Option<u64>, chaos: ChaosConfig) -> FleetReport {
    let opts = ReplicaOptions { replicas, rejuvenate_every, chaos };
    run_fleet_replicated(&tiny(), &opts).expect("replicated run")
}

fn stealth() -> ChaosConfig {
    ChaosConfig::profile("stealth").expect("stealth profile")
}

#[test]
fn stealth_corruption_is_masked_at_k3_with_byte_identical_stats() {
    let clean = run(3, None, ChaosConfig::off());
    let struck = run(3, None, stealth());
    let sup = struck.supervision.as_ref().expect("supervision stats");
    assert!(sup.divergences >= 1, "voting must notice the silent corruption: {sup:?}");
    assert!(sup.divergent_masked >= 1, "the minority replica must be masked: {sup:?}");
    assert_eq!(
        struck.stats.to_json(),
        clean.stats.to_json(),
        "a masked fault must leave the deterministic stats byte-identical"
    );
}

#[test]
fn stealth_corruption_is_detected_and_absorbed_at_k2() {
    // Two-way voting cannot out-vote the liar, but it still detects the
    // split, revives both replicas from the checkpoint and retries —
    // the transient corruption is gone on replay, so stats still match.
    let clean = run(2, None, ChaosConfig::off());
    let struck = run(2, None, stealth());
    let sup = struck.supervision.as_ref().expect("supervision stats");
    assert!(sup.divergences >= 1, "K=2 must still detect the divergence: {sup:?}");
    assert_eq!(
        struck.stats.to_json(),
        clean.stats.to_json(),
        "revive-and-retry must absorb the transient corruption"
    );
}

#[test]
fn rejuvenation_rides_along_without_disturbing_the_outcome() {
    let clean = run(3, None, ChaosConfig::off());
    let renewed = run(3, Some(3), stealth());
    let sup = renewed.supervision.as_ref().expect("supervision stats");
    assert!(sup.rejuvenations >= 2, "cadence 3 over 6 requests x 3 replicas: {sup:?}");
    assert!(sup.divergences >= 1, "stealth strike still caught: {sup:?}");
    assert_eq!(renewed.stats.to_json(), clean.stats.to_json());
}

/// The regression fixture: the exact first stealth payload the quick
/// profile draws for shard 0. Applied to a live cell it must be
/// invisible to the monitoring layer (no new detections for the rest of
/// the run) while flipping the state digest immediately — undetected by
/// the monitor, caught by voting.
#[test]
fn first_stealth_payload_is_monitor_blind_but_digest_visible() {
    let cfg = tiny();
    let plan = cfg.plan(0);
    let chaos_plan = plan_for_shard(&stealth(), &cfg, 0);
    let ev = *chaos_plan.stealth.first().expect("stealth profile plans one strike");

    let schedule = shard_schedule(&cfg, &plan);
    let mut victim = ReplicaCell::build(&cfg, &plan).expect("victim cell");
    let mut witness = ReplicaCell::build(&cfg, &plan).expect("witness cell");
    let mut struck = false;
    for (seq, req) in schedule.into_iter().enumerate() {
        if !struck && ev.at_served <= seq as u64 {
            struck = true;
            assert!(
                victim.corrupt_bit(ev.frame_salt, ev.byte_salt, ev.bit),
                "a deployed cell always has resident frames"
            );
            assert_ne!(
                victim.digest().value,
                witness.digest().value,
                "the flip must be visible to the voting digest at once"
            );
        }
        let vv = victim.deliver(req.data.clone(), req.malicious);
        let vw = witness.deliver(req.data, req.malicious);
        // Monitor-blind: the corrupted cell's verdicts never differ from
        // the clean twin's — the monitoring layer reports nothing new.
        assert_eq!(vv, vw, "payload went monitor-visible at request {seq}");
    }
    assert!(struck, "the strike threshold must fall inside the schedule");
    assert_eq!(
        victim.report().detections.len(),
        witness.report().detections.len(),
        "the monitor must stay blind for the whole run"
    );
}
