//! Property-based tests of the checkpoint/recovery schemes.
//!
//! Strategy: drive each scheme with an arbitrary interleaving of stores,
//! loads, request boundaries and failures, alongside a trivially-correct
//! reference model (a full memory snapshot per boundary). After any
//! failure + rollback, the memory visible through the scheme must equal
//! the reference snapshot — for INDRA's delta engine that includes
//! forcing its lazy restores to materialize.
//!
//! The same sequences are run through *all three* restoring schemes, so
//! the delta engine, the undo log and virtual checkpointing must agree
//! with the model and hence with each other.

use std::collections::HashMap;

use indra::core::{DeltaBackupEngine, DeltaConfig, Scheme, UndoLog, VirtualCheckpoint};
use indra::mem::{FrameAllocator, PhysicalMemory, PAGE_SHIFT};
use indra::rng::{forall, Rng};
use indra::sim::{AddressSpace, Pte};

const ASID: u16 = 7;
/// Four mapped virtual pages at vaddr 0x10000..0x14000 → ppn 0x50..0x53.
const BASE_VADDR: u32 = 0x10000;
const PAGES: u32 = 4;

#[derive(Debug, Clone)]
enum Op {
    /// Store a value at a (word-aligned) offset into the mapped window.
    Store { offset: u32, value: u32 },
    /// Load (drives the delta engine's lazy-restore read path).
    Load { offset: u32 },
    /// A request committed; a new one begins.
    Boundary,
    /// The current request was malicious; roll back.
    Fail,
}

/// Weighted 4:2:1:1 toward stores, like the original strategy.
fn gen_op(rng: &mut Rng) -> Op {
    match rng.range_u32(0, 8) {
        0..=3 => {
            Op::Store { offset: rng.range_u32(0, PAGES * 4096 / 4) * 4, value: rng.next_u32() }
        }
        4 | 5 => Op::Load { offset: rng.range_u32(0, PAGES * 4096 / 4) * 4 },
        6 => Op::Boundary,
        _ => Op::Fail,
    }
}

fn gen_ops(rng: &mut Rng, max: usize) -> Vec<Op> {
    (0..rng.range_usize(1, max)).map(|_| gen_op(rng)).collect()
}

struct Rig {
    space: AddressSpace,
    phys: PhysicalMemory,
    /// Reference: memory contents at the last request boundary.
    snapshot: HashMap<u32, u32>,
}

impl Rig {
    fn new() -> Rig {
        let mut space = AddressSpace::new(ASID);
        for p in 0..PAGES {
            space.map(
                (BASE_VADDR >> PAGE_SHIFT) + p,
                Pte { ppn: 0x50 + p, read: true, write: true, execute: false },
            );
        }
        Rig { space, phys: PhysicalMemory::new(), snapshot: HashMap::new() }
    }

    fn paddr(&self, offset: u32) -> u32 {
        self.space.translate(BASE_VADDR + offset, indra::sim::AccessKind::Read).expect("mapped")
    }

    fn take_snapshot(&mut self) {
        self.snapshot.clear();
        for w in 0..(PAGES * 4096 / 4) {
            let v = self.phys.read_u32(self.paddr(w * 4));
            if v != 0 {
                self.snapshot.insert(w * 4, v);
            }
        }
    }

    fn assert_matches_snapshot(&self, scheme_name: &str, case: &str) {
        for w in 0..(PAGES * 4096 / 4) {
            let offset = w * 4;
            let expected = self.snapshot.get(&offset).copied().unwrap_or(0);
            let actual = self.phys.read_u32(self.paddr(offset));
            assert_eq!(
                actual, expected,
                "{scheme_name} ({case}): offset {offset:#x} diverged from the boundary snapshot"
            );
        }
    }
}

fn exercise(scheme: &mut dyn Scheme, ops: &[Op]) {
    let mut rig = Rig::new();
    scheme.register(ASID);
    scheme.begin_request(ASID, &mut rig.space, &mut rig.phys);
    rig.take_snapshot();

    for op in ops {
        match *op {
            Op::Store { offset, value } => {
                let paddr = rig.paddr(offset);
                scheme.before_write(ASID, BASE_VADDR + offset, paddr, &mut rig.phys);
                rig.phys.write_u32(paddr, value);
            }
            Op::Load { offset } => {
                let paddr = rig.paddr(offset);
                scheme.before_read(ASID, BASE_VADDR + offset, paddr, &mut rig.phys);
                let _ = rig.phys.read_u32(paddr);
            }
            Op::Boundary => {
                scheme.begin_request(ASID, &mut rig.space, &mut rig.phys);
                rig.take_snapshot();
            }
            Op::Fail => {
                scheme.fail_and_rollback(ASID, &mut rig.space, &mut rig.phys);
                // Materialize lazy restores so the check sees real bytes.
                scheme.ensure_clean(ASID, BASE_VADDR, PAGES * 4096, &rig.space, &mut rig.phys);
                rig.assert_matches_snapshot(scheme.name(), "after rollback");
                // The failed request is gone; the next one begins from the
                // boundary state.
                scheme.begin_request(ASID, &mut rig.space, &mut rig.phys);
                rig.take_snapshot();
            }
        }
    }

    // Final invariant: one last failure must return to the last boundary.
    scheme.fail_and_rollback(ASID, &mut rig.space, &mut rig.phys);
    scheme.ensure_clean(ASID, BASE_VADDR, PAGES * 4096, &rig.space, &mut rig.phys);
    rig.assert_matches_snapshot(scheme.name(), "final rollback");
}

fn delta() -> DeltaBackupEngine {
    DeltaBackupEngine::new(DeltaConfig::default(), FrameAllocator::new(0x1000, 0x2000))
}

fn delta_small_lines() -> DeltaBackupEngine {
    DeltaBackupEngine::new(
        DeltaConfig { line_size: 32, ..DeltaConfig::default() },
        FrameAllocator::new(0x1000, 0x2000),
    )
}

#[test]
fn delta_engine_matches_reference() {
    forall("delta_engine_matches_reference", 64, |rng| {
        exercise(&mut delta(), &gen_ops(rng, 120));
    });
}

#[test]
fn delta_engine_32b_lines_matches_reference() {
    forall("delta_engine_32b_lines_matches_reference", 64, |rng| {
        exercise(&mut delta_small_lines(), &gen_ops(rng, 120));
    });
}

#[test]
fn undo_log_matches_reference() {
    forall("undo_log_matches_reference", 64, |rng| {
        exercise(&mut UndoLog::new(), &gen_ops(rng, 120));
    });
}

#[test]
fn virtual_checkpoint_matches_reference() {
    forall("virtual_checkpoint_matches_reference", 64, |rng| {
        exercise(
            &mut VirtualCheckpoint::new(FrameAllocator::new(0x1000, 0x2000)),
            &gen_ops(rng, 120),
        );
    });
}

#[test]
fn all_schemes_agree_on_final_memory() {
    forall("all_schemes_agree_on_final_memory", 64, |rng| {
        let ops = gen_ops(rng, 80);
        // Run the identical sequence through all three restoring schemes
        // and compare the full final memory images pairwise.
        let mut finals: Vec<(String, Vec<u32>)> = Vec::new();
        let mut schemes: Vec<Box<dyn Scheme>> = vec![
            Box::new(delta()),
            Box::new(UndoLog::new()),
            Box::new(VirtualCheckpoint::new(FrameAllocator::new(0x1000, 0x2000))),
        ];
        for scheme in &mut schemes {
            let mut rig = Rig::new();
            scheme.register(ASID);
            scheme.begin_request(ASID, &mut rig.space, &mut rig.phys);
            for op in &ops {
                match *op {
                    Op::Store { offset, value } => {
                        let paddr = rig.paddr(offset);
                        scheme.before_write(ASID, BASE_VADDR + offset, paddr, &mut rig.phys);
                        rig.phys.write_u32(paddr, value);
                    }
                    Op::Load { offset } => {
                        let paddr = rig.paddr(offset);
                        scheme.before_read(ASID, BASE_VADDR + offset, paddr, &mut rig.phys);
                    }
                    Op::Boundary => {
                        scheme.begin_request(ASID, &mut rig.space, &mut rig.phys);
                    }
                    Op::Fail => {
                        scheme.fail_and_rollback(ASID, &mut rig.space, &mut rig.phys);
                        scheme.begin_request(ASID, &mut rig.space, &mut rig.phys);
                    }
                }
            }
            scheme.ensure_clean(ASID, BASE_VADDR, PAGES * 4096, &rig.space, &mut rig.phys);
            let image: Vec<u32> =
                (0..(PAGES * 4096 / 4)).map(|w| rig.phys.read_u32(rig.paddr(w * 4))).collect();
            finals.push((scheme.name().to_owned(), image));
        }
        for pair in finals.windows(2) {
            assert_eq!(
                &pair[0].1, &pair[1].1,
                "{} and {} disagree on final memory",
                &pair[0].0, &pair[1].0
            );
        }
    });
}
