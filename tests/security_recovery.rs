//! §4.1 end-to-end security evaluation: every attack class is launched
//! against a real (scaled) service under the full INDRA stack, and the
//! tests assert detection, correct recovery, and continued service to
//! well-behaved clients.
//!
//! The most important test here is the *negative control*:
//! `code_injection_succeeds_without_monitoring` proves the exploits are
//! real (the shellcode actually takes over the machine when INDRA is
//! off), so the detection results mean something.

use indra::core::{FailureCause, IndraSystem, RunState, SchemeKind, SystemConfig, ViolationKind};
use indra::isa::Reg;
use indra::workloads::{
    attack_request, benign_request, build_app_scaled, Attack, ServiceApp, UNMAPPED_ADDR,
};

const SCALE: u32 = 15;

fn default_system() -> IndraSystem {
    IndraSystem::new(SystemConfig::default())
}

/// Drives the system with `n` benign requests, an attack, then `m` more
/// benign requests; returns the system for inspection.
fn run_attack_scenario(app: ServiceApp, attack: Attack, cfg: SystemConfig) -> IndraSystem {
    let image = build_app_scaled(app, SCALE);
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(&image).unwrap();
    for i in 0..3u8 {
        sys.push_request(benign_request(i, 0x20 + i), false);
    }
    sys.push_request(attack_request(attack, &image), true);
    for i in 0..3u8 {
        sys.push_request(benign_request(i, 0x40 + i), false);
    }
    let state = sys.run(400_000_000);
    assert_ne!(state, RunState::BudgetExhausted, "scenario must settle");
    sys
}

#[test]
fn stack_smash_detected_and_service_survives() {
    let image = build_app_scaled(ServiceApp::Httpd, SCALE);
    let target = image.addr_of("handler_0").unwrap() + 8;
    let sys = run_attack_scenario(
        ServiceApp::Httpd,
        Attack::StackSmash { target },
        SystemConfig::default(),
    );
    let report = sys.report();
    assert_eq!(report.benign_served, 6, "all well-behaved clients served");
    assert_eq!(report.true_detections(), 1);
    assert_eq!(report.false_positives(), 0);
    assert!(matches!(
        report.detections[0].cause,
        FailureCause::Violation(ViolationKind::ReturnMismatch)
    ));
}

#[test]
fn code_injection_detected_by_code_origin() {
    // Injection via the function-pointer path, with only code-origin
    // inspection enabled — the Table 2 cell that matters most.
    let mut cfg = SystemConfig::default();
    cfg.monitor.check_call_return = false;
    cfg.monitor.check_control_transfer = false;
    let sys = run_attack_scenario(ServiceApp::Httpd, Attack::InjectedHandler, cfg);
    let report = sys.report();
    assert_eq!(report.benign_served, 6);
    assert!(report
        .detections
        .iter()
        .any(|d| matches!(d.cause, FailureCause::Violation(ViolationKind::CodeInjection))));
}

#[test]
fn code_injection_succeeds_without_monitoring() {
    // Negative control: with INDRA off, the same request takes over the
    // machine — the injected shellcode runs and calls exit(0x31337).
    let image = build_app_scaled(ServiceApp::Httpd, SCALE);
    let cfg =
        SystemConfig { monitoring: false, scheme: SchemeKind::None, ..SystemConfig::default() };
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(&image).unwrap();
    sys.push_request(benign_request(0, 1), false);
    sys.push_request(attack_request(Attack::InjectedHandler, &image), true);
    sys.push_request(benign_request(1, 2), false);
    let state = sys.run(400_000_000);
    assert_eq!(state, RunState::Halted, "shellcode kills the service");
    let a0 = sys.machine().core(1).reg(Reg::A0);
    assert_eq!(a0, 0x31337, "the attacker's exit code proves arbitrary code execution");
    assert_eq!(sys.report().benign_served, 1, "clients after the attack are lost");
}

#[test]
fn function_pointer_hijack_detected() {
    let sys = run_attack_scenario(
        ServiceApp::Bind,
        Attack::HandlerHijack { target: UNMAPPED_ADDR },
        SystemConfig::default(),
    );
    let report = sys.report();
    assert_eq!(report.benign_served, 6);
    assert!(report
        .detections
        .iter()
        .any(|d| matches!(d.cause, FailureCause::Violation(ViolationKind::InvalidIndirectTarget))));
}

#[test]
fn wild_write_fault_recovered() {
    let sys = run_attack_scenario(
        ServiceApp::Nfs,
        Attack::WildWrite { addr: UNMAPPED_ADDR },
        SystemConfig::default(),
    );
    let report = sys.report();
    assert_eq!(report.benign_served, 6);
    assert!(report.detections.iter().any(|d| d.cause == FailureCause::Fault));
    assert_eq!(report.false_positives(), 0);
}

#[test]
fn rollback_actually_restores_memory() {
    // After a detected attack, the delta engine must leave the service's
    // observable behaviour identical to an attack-free run.
    let image = build_app_scaled(ServiceApp::Ftpd, SCALE);

    let mut clean = default_system();
    clean.deploy(&image).unwrap();
    for i in 0..4u8 {
        clean.push_request(benign_request(i, 0x60 + i), false);
    }
    clean.run(400_000_000);
    let clean_responses = clean.take_responses();

    let mut attacked = default_system();
    attacked.deploy(&image).unwrap();
    for i in 0..2u8 {
        attacked.push_request(benign_request(i, 0x60 + i), false);
    }
    let target = image.addr_of("handler_0").unwrap() + 8;
    attacked.push_request(attack_request(Attack::StackSmash { target }, &image), true);
    for i in 2..4u8 {
        attacked.push_request(benign_request(i, 0x60 + i), false);
    }
    attacked.run(400_000_000);
    let attacked_responses = attacked.take_responses();

    assert_eq!(attacked.report().true_detections(), 1);
    // Same number of benign responses with identical payloads.
    assert_eq!(clean_responses.len(), 4);
    assert_eq!(attacked_responses.len(), 4);
    for (c, a) in clean_responses.iter().zip(&attacked_responses) {
        assert_eq!(c.data, a.data, "post-recovery responses must be byte-identical");
    }
}

#[test]
fn dormant_attack_defeats_micro_but_hybrid_recovers() {
    let image = build_app_scaled(ServiceApp::Httpd, SCALE);
    let mut cfg = SystemConfig::default();
    cfg.hybrid.macro_interval = 2;
    cfg.hybrid.failure_threshold = 2;
    // Compartments would attribute the very first victim fault to the
    // planter's sealed compartment and heal at micro level — this test
    // exercises the macro-escalation path, so turn them off.
    cfg.compartments = false;
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(&image).unwrap();

    for i in 0..3u8 {
        sys.push_request(benign_request(i, 3 + i), false);
    }
    sys.push_request(attack_request(Attack::Dormant { addr: UNMAPPED_ADDR }, &image), true);
    for i in 0..5u8 {
        sys.push_request(benign_request(i, 0x11 + i), false);
    }
    let state = sys.run(600_000_000);
    assert_ne!(state, RunState::BudgetExhausted);

    // Micro recoveries were tried and failed repeatedly, then the macro
    // checkpoint saved the service.
    let hybrid = sys.hybrid().stats();
    assert!(hybrid.micro_recoveries >= 2, "micro recovery attempted: {hybrid:?}");
    assert!(hybrid.macro_recoveries >= 1, "macro escalation required: {hybrid:?}");

    // The poison latch is gone and late clients were served.
    let latch_addr = image.addr_of("latch").unwrap();
    let asid = sys.os().asid_of(sys.os().pid_on_core(1).unwrap());
    assert_eq!(sys.machine().read_virtual_u32(asid, latch_addr), Some(0));
    let last_benign =
        sys.report().samples.iter().filter(|s| !s.malicious).map(|s| s.request_id).max().unwrap();
    assert_eq!(last_benign, 8, "the final benign client was served after macro recovery");
}

#[test]
fn format_string_write_anywhere_detected() {
    // §2.1's format-string class: the %n-analogue directive overwrites the
    // dispatch table entry used by the very same request.
    let sys = run_attack_scenario(
        ServiceApp::Httpd,
        Attack::FormatString { value: UNMAPPED_ADDR },
        SystemConfig::default(),
    );
    let report = sys.report();
    assert_eq!(report.benign_served, 6);
    assert_eq!(report.true_detections(), 1);
    assert!(report
        .detections
        .iter()
        .any(|d| matches!(d.cause, FailureCause::Violation(ViolationKind::InvalidIndirectTarget))));
}

#[test]
fn audit_trail_records_violations() {
    let image = build_app_scaled(ServiceApp::Sendmail, SCALE);
    let target = image.addr_of("handler_1").unwrap() + 8;
    let sys = run_attack_scenario(
        ServiceApp::Sendmail,
        Attack::StackSmash { target },
        SystemConfig::default(),
    );
    let violations = sys.monitor().violations();
    assert!(!violations.is_empty());
    assert_eq!(violations[0].kind, ViolationKind::ReturnMismatch);
    assert_eq!(violations[0].addr, target, "the audit records where the hijack aimed");
}

#[test]
fn every_app_survives_every_attack_class() {
    for app in ServiceApp::ALL {
        let image = build_app_scaled(app, 25);
        let handler = image.addr_of("handler_0").unwrap() + 8;
        for attack in [
            Attack::StackSmash { target: handler },
            Attack::CodeInjection,
            Attack::InjectedHandler,
            Attack::HandlerHijack { target: UNMAPPED_ADDR },
            Attack::WildWrite { addr: UNMAPPED_ADDR },
            Attack::FormatString { value: UNMAPPED_ADDR },
        ] {
            let mut sys = default_system();
            sys.deploy(&image).unwrap();
            sys.push_request(benign_request(0, 7), false);
            sys.push_request(attack_request(attack, &image), true);
            sys.push_request(benign_request(1, 9), false);
            let state = sys.run(400_000_000);
            assert_ne!(state, RunState::BudgetExhausted, "{app}/{attack:?}");
            assert_eq!(
                sys.report().benign_served,
                2,
                "{app}/{attack:?}: benign clients must be served"
            );
            assert!(
                !sys.report().detections.is_empty(),
                "{app}/{attack:?}: the attack must be detected"
            );
            assert_eq!(sys.report().false_positives(), 0, "{app}/{attack:?}");
        }
    }
}
