//! Acceptance for the serve subsystem's headline property: a fleet that
//! served *live socket traffic* — including exploit payloads, a
//! scale-up, a checkpoint-backed drain, and a daemon restart — is
//! byte-identically reproducible from its per-shard ingress logs alone.

use std::net::TcpStream;
use std::path::PathBuf;

use indra_serve::proto::{read_frame, write_frame};
use indra_serve::{
    replay_state_dir, Daemon, EngineConfig, Frame, HealthReply, ServeConfig, Verdict,
};
use indra_workloads::{benign_request, build_app_scaled, detectable_attack_suite, ServiceApp};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("indra-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        engine: EngineConfig { app: ServiceApp::Httpd, scale: 60, ..EngineConfig::default() },
        shards: 2,
        queue_depth: 8,
        checkpoint_every: 3,
        state_dir: dir.to_path_buf(),
        port: 0,
        replicas: 1,
        rejuvenate_every: None,
    }
}

/// Sends `n` requests (every third one a real exploit) and waits for
/// every response. Returns (responses, detections seen).
fn drive(stream: &mut TcpStream, base_id: u64, n: u64) -> (u64, u64) {
    let engine = EngineConfig { app: ServiceApp::Httpd, scale: 60, ..EngineConfig::default() };
    let image = build_app_scaled(engine.app, engine.scale);
    let attacks = detectable_attack_suite(&image);
    for i in 0..n {
        let malicious = i % 3 == 2;
        let data = if malicious {
            indra_workloads::attack_request(attacks[i as usize % attacks.len()], &image)
        } else {
            benign_request(i as u8, 0x30 + (i % 64) as u8)
        };
        let frame = Frame::Request { id: base_id + i, malicious, data };
        write_frame(stream, &frame).expect("send request");
    }
    let mut responses = 0;
    let mut detections = 0;
    while responses < n {
        match read_frame(stream).expect("read response") {
            Frame::Response { verdict, .. } => {
                responses += 1;
                if matches!(verdict, Verdict::DetectedMicro | Verdict::DetectedMacro) {
                    detections += 1;
                }
            }
            Frame::Rejected { .. } => panic!("queue_depth 8 x 2 shards must admit serial sends"),
            other => panic!("unexpected frame {other:?}"),
        }
    }
    (responses, detections)
}

fn control(stream: &mut TcpStream, frame: &Frame) -> Frame {
    write_frame(stream, frame).expect("send control");
    read_frame(stream).expect("control reply")
}

fn health(stream: &mut TcpStream) -> HealthReply {
    match control(stream, &Frame::Health) {
        Frame::HealthReply(h) => h,
        other => panic!("expected HealthReply, got {other:?}"),
    }
}

#[test]
fn live_served_fleet_replays_byte_identically() {
    let dir = scratch("serve-replay");
    let daemon = Daemon::start(test_config(&dir)).expect("start daemon");
    let addr = daemon.addr();

    let mut conn = TcpStream::connect(addr).expect("connect");
    let h = health(&mut conn);
    assert!(h.ok && h.shards_live == 2, "fresh daemon: {h:?}");

    let (_, det) = drive(&mut conn, 0, 9);
    assert!(det >= 2, "exploit payloads must be detected live, saw {det}");

    // Live scale-up: shard 2 joins and takes traffic.
    match control(&mut conn, &Frame::Scale { shards: 3 }) {
        Frame::ControlOk { .. } => {}
        other => panic!("scale refused: {other:?}"),
    }
    let (_, _) = drive(&mut conn, 100, 6);
    let h = health(&mut conn);
    assert_eq!(h.shards_live, 3, "after scale-up: {h:?}");

    // Checkpoint-backed drain of shard 0; traffic keeps flowing.
    match control(&mut conn, &Frame::Drain { shard: 0 }) {
        Frame::ControlOk { .. } => {}
        other => panic!("drain refused: {other:?}"),
    }
    let (_, _) = drive(&mut conn, 200, 4);
    let stats_json = match control(&mut conn, &Frame::Stats) {
        Frame::StatsReply { json } => json,
        other => panic!("expected StatsReply, got {other:?}"),
    };
    assert!(stats_json.contains("\"served\":"), "live stats: {stats_json}");
    drop(conn);

    let report = daemon.stop().expect("stop daemon");
    assert_eq!(report.stats.served + report.stats.detections, 19, "9 + 6 + 4 requests answered");
    assert!(report.stats.per_shard.iter().all(|s| s.completed), "drained shards complete");
    let live_json = report.stats.to_json();

    // Acceptance: replay from the ingress logs alone, byte-identical.
    let replayed = replay_state_dir(&dir).expect("replay");
    assert_eq!(replayed.stats.to_json(), live_json, "replay must reproduce the live bytes");
    assert_eq!(replayed.requests_replayed, 19);

    // Restart on the same state dir (daemon resume path), serve a bit
    // more, and check replay still matches the grown history.
    let daemon = Daemon::start(test_config(&dir)).expect("restart daemon");
    let mut conn = TcpStream::connect(daemon.addr()).expect("reconnect");
    // Workers recover checkpoint + log asynchronously; poll until the
    // counters reflect the full admitted history (13 benign + 6 attacks).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        let h = health(&mut conn);
        if h.served + h.detections >= 19 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "recovery never caught up: {h:?}");
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let (_, _) = drive(&mut conn, 300, 4);
    drop(conn);
    let report2 = daemon.stop().expect("stop resumed daemon");
    let replayed2 = replay_state_dir(&dir).expect("replay grown history");
    assert_eq!(replayed2.stats.to_json(), report2.stats.to_json());
    assert_eq!(replayed2.requests_replayed, 23);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replicated_daemon_reports_replica_health_and_replays_identically() {
    let dir = scratch("serve-replica");
    let cfg = ServeConfig { replicas: 3, rejuvenate_every: Some(3), ..test_config(&dir) };
    let daemon = Daemon::start(cfg).expect("start replicated daemon");
    let mut conn = TcpStream::connect(daemon.addr()).expect("connect");

    let h = health(&mut conn);
    assert_eq!(h.replicas, 3, "health must carry the replica-group extension: {h:?}");

    let (_, det) = drive(&mut conn, 0, 9);
    assert!(det >= 2, "exploits detected through the replicated path, saw {det}");
    let h = health(&mut conn);
    assert_eq!(h.divergences, 0, "healthy followers never diverge: {h:?}");
    assert!(h.rejuvenations >= 1, "cadence 3 over 9 requests must rejuvenate: {h:?}");
    drop(conn);

    let report = daemon.stop().expect("stop replicated daemon");
    assert_eq!(report.stats.served + report.stats.detections, 9);

    // Replication is invisible to durable history: replay (which knows
    // nothing about replicas) reproduces the live bytes.
    let replayed = replay_state_dir(&dir).expect("replay");
    assert_eq!(replayed.stats.to_json(), report.stats.to_json());
    assert_eq!(replayed.requests_replayed, 9);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_ingress_log_tail_replays_the_valid_prefix() {
    let dir = scratch("serve-torn");
    let daemon = Daemon::start(test_config(&dir)).expect("start daemon");
    let mut conn = TcpStream::connect(daemon.addr()).expect("connect");
    let (_, _) = drive(&mut conn, 0, 6);
    drop(conn);
    let report = daemon.stop().expect("stop");
    assert_eq!(report.stats.served + report.stats.detections, 6);

    // Tear the tail of one shard's ingress log mid-record (a SIGKILL
    // mid-append). Replay must not panic and must reproduce a valid
    // prefix of history, not garbage.
    let log_path = dir.join("shard-0000").join("ingress.log");
    let bytes = std::fs::read(&log_path).expect("read log");
    assert!(bytes.len() > 20, "shard 0 must have taken traffic");
    std::fs::write(&log_path, &bytes[..bytes.len() - 7]).expect("tear log");

    let replayed = replay_state_dir(&dir).expect("torn tail must still replay");
    assert!(replayed.requests_replayed < 6, "the torn record must be dropped");
    assert_eq!(replayed.stats.served + replayed.stats.detections, replayed.requests_replayed);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_is_rejected_with_typed_frames_not_buffering() {
    let dir = scratch("serve-overload");
    // One shard, tiny queue: serial round-trips can never overload it,
    // so fire a burst without reading responses.
    let cfg = ServeConfig { shards: 1, queue_depth: 2, ..test_config(&dir) };
    let daemon = Daemon::start(cfg).expect("start daemon");
    let mut conn = TcpStream::connect(daemon.addr()).expect("connect");
    let burst = 40u64;
    for i in 0..burst {
        let frame = Frame::Request { id: i, malicious: false, data: benign_request(0, 0x41) };
        write_frame(&mut conn, &frame).expect("send burst");
    }
    let mut rejected = 0u64;
    let mut answered = 0u64;
    while answered + rejected < burst {
        match read_frame(&mut conn).expect("read burst reply") {
            Frame::Rejected { reason, .. } => {
                rejected += 1;
                assert_eq!(reason, indra_serve::RejectReason::QueueFull);
            }
            Frame::Response { .. } => answered += 1,
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(rejected > 0, "a 40-deep burst into a depth-2 queue must shed load");
    drop(conn);

    let report = daemon.stop().expect("stop");
    assert_eq!(report.rejected, rejected);
    assert_eq!(report.stats.served + report.stats.detections, answered);

    // Rejected requests never reach the log: replay sees only admitted.
    let replayed = replay_state_dir(&dir).expect("replay");
    assert_eq!(replayed.requests_replayed, answered);
    assert_eq!(replayed.stats.to_json(), report.stats.to_json());

    let _ = std::fs::remove_dir_all(&dir);
}
