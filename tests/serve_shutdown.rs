//! Graceful shutdown of the batch fleet: a SIGINT/SIGTERM-style flag
//! raised mid-run drains every shard at a run-slice (= checkpoint)
//! boundary, and the interrupted run resumes byte-identically — the
//! same property the serve daemon gets from its ingress log, here for
//! `fleetbench`'s schedule-driven executor.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use indra_fleet::{resume_fleet, run_fleet, FleetConfig};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("indra-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn shutdown_fleet(dir: &std::path::Path, shutdown: &'static AtomicBool) -> FleetConfig {
    FleetConfig {
        shards: 2,
        checkpoint_every: 2,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        shutdown: Some(shutdown),
        ..FleetConfig::quick()
    }
}

#[test]
fn pre_raised_shutdown_flag_stops_at_the_first_boundary_and_resumes() {
    let dir = scratch("serve-shutdown-pre");
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(true)));

    let baseline = run_fleet(&FleetConfig { shutdown: None, ..shutdown_fleet(&dir, flag) });
    let _ = std::fs::remove_dir_all(&dir); // baseline checkpoints discarded
    let baseline_json = baseline.stats.to_json();

    let interrupted = run_fleet(&shutdown_fleet(&dir, flag));
    assert!(
        interrupted.stats.per_shard.iter().all(|s| !s.completed),
        "a pre-raised flag must stop every shard before it finishes"
    );
    assert_eq!(interrupted.stats.served, 0, "stopped at the first slice boundary");

    // The flag is a property of this process, never of the store: the
    // resumed run must go to quota and match the uninterrupted bytes.
    flag.store(false, Ordering::SeqCst);
    let resumed = resume_fleet(&dir).expect("resume after graceful shutdown");
    assert!(resumed.stats.per_shard.iter().all(|s| s.completed));
    assert_eq!(resumed.stats.to_json(), baseline_json);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_run_shutdown_resumes_byte_identically() {
    let dir = scratch("serve-shutdown-mid");
    let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));

    let baseline = run_fleet(&FleetConfig { shutdown: None, ..shutdown_fleet(&dir, flag) });
    let _ = std::fs::remove_dir_all(&dir);
    let baseline_json = baseline.stats.to_json();

    // Raise the flag from another thread while the fleet runs. Where
    // exactly it lands is timing-dependent; correctness must not be:
    // whatever prefix completed, the resume runs to quota and the bytes
    // must match the uninterrupted run.
    let raiser = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(150));
        flag.store(true, Ordering::SeqCst);
    });
    let interrupted = run_fleet(&shutdown_fleet(&dir, flag));
    raiser.join().expect("raiser thread");

    if interrupted.stats.per_shard.iter().any(|s| !s.completed) {
        let resumed = resume_fleet(&dir).expect("resume after mid-run shutdown");
        assert_eq!(resumed.stats.to_json(), baseline_json);
    } else {
        // The run outpaced the timer — it must then already match.
        assert_eq!(interrupted.stats.to_json(), baseline_json);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
