//! End-to-end proof that the static pipeline hardens the monitor: an
//! over-declared indirect target that the declared-only policy would
//! accept is dropped by [`indra::analyze::tighten`], so the strict
//! (default) system flags the control transfer the relaxed system lets
//! through. Plus the satellite regressions: tighten ≡ from_image on
//! benign workloads, tighten never grows the declared set, and the
//! fixture allowlist in `results/ANALYZE_expected.json` stays honest.

use indra::analyze::{analyze_image, fixtures, AppMetadata};
use indra::core::{FailureCause, IndraSystem, RunState, SystemConfig, ViolationKind};
use indra::isa::assemble;
use indra::workloads::{build_app_scaled, ServiceApp};

/// A service with one real handler (`work`) whose metadata *over-declares*
/// `work + 4` — a mid-function address — as a legitimate indirect target.
/// A request starting with a nonzero byte makes the service jump there.
const OVERDECLARED_SERVICE: &str = "
main:
    la  s0, buf
loop:
    mv  a0, s0
    li  a1, 64
    syscall 1            # net_recv
    lw  t1, 0(s0)
    beqz t1, benign
    la  t0, work         # trigger: indirect call into the middle of work
    addi t0, t0, 4
    jalr t0
    j respond
benign:
    call work
respond:
    mv  a0, s0
    li  a1, 4
    syscall 2            # net_send
    j loop

work:
    addi a0, zero, 7
    ret

.data
buf: .space 64
";

fn overdeclared_image() -> (indra::isa::Image, u32) {
    let mut image = assemble("overd", OVERDECLARED_SERVICE).unwrap();
    let mid = image.addr_of("work").unwrap() + 4;
    image.indirect_targets.insert(mid);
    (image, mid)
}

#[test]
fn strict_policy_flags_the_overdeclared_target() {
    let (image, mid) = overdeclared_image();

    // The analyzer sees the over-declaration statically...
    let report = analyze_image(&image);
    assert!(!report.clean(), "over-declaration must produce a finding");
    assert!(!report.tightened.indirect_targets.contains(&mid));
    assert!(AppMetadata::from_image(&image).indirect_targets.contains(&mid));

    // ...and the default (strict) system registers the tightened policy,
    // so the runtime transfer to `work + 4` is an invalid indirect target.
    let mut sys = IndraSystem::new(SystemConfig::default());
    sys.deploy(&image).unwrap();
    sys.push_request(vec![0; 4], false); // benign path: direct call
    sys.push_request(vec![1; 4], true); // trigger: jalr to work + 4
    let state = sys.run(10_000_000);
    assert_ne!(state, RunState::BudgetExhausted);
    assert!(
        sys.report().detections.iter().any(|d| matches!(
            d.cause,
            FailureCause::Violation(ViolationKind::InvalidIndirectTarget)
        )),
        "strict policy must flag the mid-function indirect call: {:?}",
        sys.report().detections
    );
    let policy = sys.report().policy;
    assert_eq!(policy.services, 1);
    assert!(policy.registered_targets < policy.declared_targets);
    assert!(policy.static_findings >= 1);
}

#[test]
fn relaxed_policy_accepts_the_declared_target() {
    let (image, _) = overdeclared_image();
    let cfg = SystemConfig { strict_policy: false, ..SystemConfig::default() };
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(&image).unwrap();
    sys.push_request(vec![0; 4], false);
    sys.push_request(vec![1; 4], false);
    let state = sys.run(10_000_000);
    assert_eq!(state, RunState::Idle);
    assert_eq!(sys.report().benign_served, 2);
    assert!(
        sys.report().detections.is_empty(),
        "declared-only policy trusts the declaration: {:?}",
        sys.report().detections
    );
    let policy = sys.report().policy;
    assert_eq!(policy.registered_targets, policy.declared_targets);
}

/// Satellite 3: on every benign workload the tightened policy agrees with
/// the trusting loader on executable pages and registers exactly the
/// declared targets — and never invents new ones.
#[test]
fn tighten_agrees_with_from_image_on_benign_workloads() {
    for app in ServiceApp::ALL {
        let image = build_app_scaled(app, 20);
        let report = analyze_image(&image);
        assert!(report.clean(), "{app}: benign workload must lint clean: {:?}", report.findings);
        let trusted = AppMetadata::from_image(&image);
        let tight = &report.tightened;
        assert_eq!(tight.executable_pages, trusted.executable_pages, "{app}: exec pages");
        assert_eq!(tight.indirect_targets, trusted.indirect_targets, "{app}: targets");
        assert_eq!(tight.dynamic_regions, trusted.dynamic_regions, "{app}: dyn regions");
        assert!(
            tight.indirect_targets.is_subset(&image.indirect_targets),
            "{app}: tighten must never grow the declared set"
        );
    }
}

/// Satellite 4 support: the allowlist `ci.sh` greps against must match
/// both the in-crate expectation table and the analyzer's real output.
#[test]
fn expected_findings_file_matches_the_fixtures() {
    let path = format!("{}/results/ANALYZE_expected.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap();
    for name in fixtures::FIXTURE_NAMES {
        let kind = fixtures::expected_finding(name).unwrap();
        let pair = format!("\"{}\":\"{}\"", name, kind.as_str());
        assert!(text.contains(&pair), "{path} must contain {pair}");
        let image = fixtures::fixture(name).unwrap();
        let report = analyze_image(&image);
        assert!(
            report.findings.iter().any(|f| f.kind == kind),
            "fixture {name} must trigger {kind:?}: {:?}",
            report.findings
        );
    }
    // No stale entries: the file lists exactly the shipped fixtures.
    assert_eq!(text.matches("\":\"").count(), fixtures::FIXTURE_NAMES.len());
}
