//! End-to-end proof that the static pipeline hardens the monitor: an
//! over-declared indirect target that the declared-only policy would
//! accept is dropped by [`indra::analyze::tighten`], so the strict
//! (default) system flags the control transfer the relaxed system lets
//! through. Plus the satellite regressions: tighten ≡ from_image on
//! benign workloads, tighten never grows the declared set, and the
//! fixture allowlist in `results/ANALYZE_expected.json` stays honest.
//! The offensive pass rides the same pipeline: `enumerate_gadgets`'s
//! claims (every gadget decodes at its address, ends in its declared
//! indirect transfer, steers only inside the tightened policy) are
//! property-checked here, and the benign-surface scores the ci gate
//! locks are validated against the analyzer's real output.

use indra::analyze::{analyze_image, enumerate_gadgets, fixtures, tighten, AppMetadata};
use indra::core::{FailureCause, IndraSystem, RunState, SystemConfig, ViolationKind};
use indra::isa::assemble;
use indra::workloads::{build_app_scaled, ServiceApp};

/// A service with one real handler (`work`) whose metadata *over-declares*
/// `work + 4` — a mid-function address — as a legitimate indirect target.
/// A request starting with a nonzero byte makes the service jump there.
const OVERDECLARED_SERVICE: &str = "
main:
    la  s0, buf
loop:
    mv  a0, s0
    li  a1, 64
    syscall 1            # net_recv
    lw  t1, 0(s0)
    beqz t1, benign
    la  t0, work         # trigger: indirect call into the middle of work
    addi t0, t0, 4
    jalr t0
    j respond
benign:
    call work
respond:
    mv  a0, s0
    li  a1, 4
    syscall 2            # net_send
    j loop

work:
    addi a0, zero, 7
    ret

.data
buf: .space 64
";

fn overdeclared_image() -> (indra::isa::Image, u32) {
    let mut image = assemble("overd", OVERDECLARED_SERVICE).unwrap();
    let mid = image.addr_of("work").unwrap() + 4;
    image.indirect_targets.insert(mid);
    (image, mid)
}

#[test]
fn strict_policy_flags_the_overdeclared_target() {
    let (image, mid) = overdeclared_image();

    // The analyzer sees the over-declaration statically...
    let report = analyze_image(&image);
    assert!(!report.clean(), "over-declaration must produce a finding");
    assert!(!report.tightened.indirect_targets.contains(&mid));
    assert!(AppMetadata::from_image(&image).indirect_targets.contains(&mid));

    // ...and the default (strict) system registers the tightened policy,
    // so the runtime transfer to `work + 4` is an invalid indirect target.
    let mut sys = IndraSystem::new(SystemConfig::default());
    sys.deploy(&image).unwrap();
    sys.push_request(vec![0; 4], false); // benign path: direct call
    sys.push_request(vec![1; 4], true); // trigger: jalr to work + 4
    let state = sys.run(10_000_000);
    assert_ne!(state, RunState::BudgetExhausted);
    assert!(
        sys.report().detections.iter().any(|d| matches!(
            d.cause,
            FailureCause::Violation(ViolationKind::InvalidIndirectTarget)
        )),
        "strict policy must flag the mid-function indirect call: {:?}",
        sys.report().detections
    );
    let policy = sys.report().policy;
    assert_eq!(policy.services, 1);
    assert!(policy.registered_targets < policy.declared_targets);
    assert!(policy.static_findings >= 1);
}

#[test]
fn relaxed_policy_accepts_the_declared_target() {
    let (image, _) = overdeclared_image();
    let cfg = SystemConfig { strict_policy: false, ..SystemConfig::default() };
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(&image).unwrap();
    sys.push_request(vec![0; 4], false);
    sys.push_request(vec![1; 4], false);
    let state = sys.run(10_000_000);
    assert_eq!(state, RunState::Idle);
    assert_eq!(sys.report().benign_served, 2);
    assert!(
        sys.report().detections.is_empty(),
        "declared-only policy trusts the declaration: {:?}",
        sys.report().detections
    );
    let policy = sys.report().policy;
    assert_eq!(policy.registered_targets, policy.declared_targets);
}

/// Satellite 3: on every benign workload the tightened policy agrees with
/// the trusting loader on executable pages and registers exactly the
/// declared targets — and never invents new ones.
#[test]
fn tighten_agrees_with_from_image_on_benign_workloads() {
    for app in ServiceApp::ALL {
        let image = build_app_scaled(app, 20);
        let report = analyze_image(&image);
        assert!(report.clean(), "{app}: benign workload must lint clean: {:?}", report.findings);
        let trusted = AppMetadata::from_image(&image);
        let tight = &report.tightened;
        assert_eq!(tight.executable_pages, trusted.executable_pages, "{app}: exec pages");
        assert_eq!(tight.indirect_targets, trusted.indirect_targets, "{app}: targets");
        assert_eq!(tight.dynamic_regions, trusted.dynamic_regions, "{app}: dyn regions");
        assert!(
            tight.indirect_targets.is_subset(&image.indirect_targets),
            "{app}: tighten must never grow the declared set"
        );
    }
}

/// Satellite 4 support: the allowlist `ci.sh` greps against must match
/// both the in-crate expectation table and the analyzer's real output.
#[test]
fn expected_findings_file_matches_the_fixtures() {
    let path = format!("{}/results/ANALYZE_expected.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap();
    for name in fixtures::FIXTURE_NAMES {
        let kind = fixtures::expected_finding(name).unwrap();
        let pair = format!("\"{}\":\"{}\"", name, kind.as_str());
        assert!(text.contains(&pair), "{path} must contain {pair}");
        let image = fixtures::fixture(name).unwrap();
        let report = analyze_image(&image);
        assert!(
            report.findings.iter().any(|f| f.kind == kind),
            "fixture {name} must trigger {kind:?}: {:?}",
            report.findings
        );
    }
    // No stale entries: the fixtures section lists exactly the shipped
    // fixtures (surface scores are numeric, so they never match `":"`).
    assert_eq!(text.matches("\":\"").count(), fixtures::FIXTURE_NAMES.len());
}

/// Satellite 6: the benign-surface regression lock. The scores `ci.sh`
/// gates on must match what `enumerate_gadgets` actually reports for
/// every stock workload at the gated scale.
#[test]
fn expected_surface_scores_match_the_stock_workloads() {
    let path = format!("{}/results/ANALYZE_expected.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap();
    let surface = text
        .split("\"surface\":{")
        .nth(1)
        .and_then(|s| s.split('}').next())
        .expect("ANALYZE_expected.json has a surface section");
    for app in ServiceApp::ALL {
        let report = enumerate_gadgets(&build_app_scaled(app, 20));
        let pair = format!("\"{}\":{}", app.name(), report.stats.attack_surface);
        assert!(
            surface.contains(&pair),
            "surface lock for {app} is stale: expected `{pair}` in `{surface}`"
        );
    }
    assert_eq!(
        surface.matches(':').count(),
        ServiceApp::ALL.len(),
        "surface section lists exactly the six stock apps: {surface}"
    );
}

/// Satellite 3: the gadget finder's three claims hold on every image it
/// is pointed at — each gadget decodes cleanly at its claimed address,
/// ends in exactly the indirect transfer it declares, and can steer
/// only inside the *tightened* (declared ∩ proven) policy, no matter
/// how over-declared the input metadata is.
#[test]
fn forall_gadgets_decode_terminate_and_stay_in_policy() {
    use indra::analyze::{Disassembly, GadgetKind};
    use indra::isa::{Instruction, Reg};

    indra::rng::forall("gadget_invariants", 24, |rng| {
        let app = *rng.pick(&ServiceApp::ALL);
        // Large factors shrink the spec (scaled_down divides): keep the
        // property cheap while still varying the image shape.
        let scale = rng.range_u32(10, 40);
        let mut image = build_app_scaled(app, scale);
        // Adversarial metadata: over-declare mid-function and garbage
        // addresses as indirect targets. tighten() must shed these, and
        // no gadget may claim to steer to a shed address.
        let code: Vec<u32> = {
            let d = Disassembly::of_image(&image);
            d.words.keys().copied().collect()
        };
        for _ in 0..rng.range_usize(0, 6) {
            let addr = if rng.gen_bool() {
                *rng.pick(&code) + 4 * rng.range_u32(0, 4)
            } else {
                rng.range_u32(0, u32::MAX)
            };
            image.indirect_targets.insert(addr);
        }

        let registered = tighten(&image).indirect_targets;
        let disasm = Disassembly::of_image(&image);
        let report = enumerate_gadgets(&image);
        for g in &report.gadgets {
            // (a) The whole straight-line body decodes cleanly.
            assert!(registered.contains(&g.entry), "gadget entry {:#x} is registered", g.entry);
            let mut addr = g.entry;
            while addr <= g.transfer_at {
                let w = disasm.words.get(&addr).unwrap_or_else(|| {
                    panic!("gadget body {addr:#x} (from {:#x}) is mapped code", g.entry)
                });
                assert!(w.inst.is_some(), "gadget word {addr:#x} decodes cleanly");
                addr += 4;
            }
            // (b) The terminator is the indirect transfer it claims.
            let term = disasm.words[&g.transfer_at].inst.expect("terminator decodes");
            let Instruction::Jalr { rd, rs1, .. } = term else {
                panic!("gadget at {:#x} must end in jalr, got {term:?}", g.entry)
            };
            let expected = if rd == Reg::RA {
                GadgetKind::IndirectCall
            } else if rs1 == Reg::RA {
                GadgetKind::Return
            } else {
                GadgetKind::IndirectJump
            };
            assert_eq!(g.kind, expected, "terminator kind at {:#x}", g.transfer_at);
            // (c) Every steerable target is inside the tightened policy.
            for t in &g.targets {
                assert!(
                    registered.contains(t),
                    "gadget {:#x} claims out-of-policy target {t:#x}",
                    g.entry
                );
            }
            if g.kind == GadgetKind::Return {
                assert!(g.targets.is_empty(), "returns are shadow-stack-constrained");
            }
        }
    });
}

/// Satellite 3's second half: the committed gadget-chain fixture is a
/// *known* chain, asserted end-to-end — entry gadget, registered
/// landing sites, writable slots backing every hop.
#[test]
fn gadget_chain_fixture_yields_the_known_chain() {
    use indra::analyze::GadgetKind;

    let image = fixtures::fixture("gadget_chain").expect("gadget_chain is resolvable by name");
    let registered = tighten(&image).indirect_targets;
    // The fixture's declarations are honest — every declared target
    // survives tightening, so its whole surface is *in-policy*. (The
    // analyzer still notes the dispatch loop as a call-graph cycle;
    // that is the point, not a misdeclaration.)
    assert_eq!(registered, image.indirect_targets);
    let report = enumerate_gadgets(&image);

    assert!(report.chain.len() >= 2, "a chain of ≥ 2 hops: {:?}", report.chain);
    for hop in &report.chain {
        assert!(registered.contains(hop), "chain hop {hop:#x} is a registered target");
        assert!(
            report.gadgets.iter().any(|g| g.entry == *hop),
            "chain hop {hop:#x} is a cataloged gadget"
        );
    }
    let kinds: std::collections::BTreeSet<GadgetKind> =
        report.gadgets.iter().map(|g| g.kind).collect();
    assert!(kinds.contains(&GadgetKind::IndirectJump), "store_a ends in `jr` (JOP hop)");
    assert!(kinds.contains(&GadgetKind::IndirectCall), "main/store_b end in `jalr` (dispatch)");
    assert!(
        !report.writable_slots.is_empty(),
        "the handlers table words are writable code-pointer slots"
    );
    assert!(report.stats.attack_surface > 0);
}
