//! Cross-crate integration: all six services under the full stack,
//! reconfigurability, FIFO/CAM interactions, and scheme equivalence at
//! the system level.

use indra::core::{AvailabilityReport, IndraSystem, RunState, SchemeKind, SystemConfig};
use indra::sim::MachineConfig;
use indra::workloads::{benign_request, build_app_scaled, ServiceApp, Traffic};

const SCALE: u32 = 25;

fn run_benign(app: ServiceApp, cfg: SystemConfig, n: u32, seed: u64) -> IndraSystem {
    let image = build_app_scaled(app, SCALE);
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(&image).unwrap();
    for r in Traffic::benign(n, seed).generate(&image) {
        sys.push_request(r.data, r.malicious);
    }
    let state = sys.run(600_000_000);
    assert_eq!(state, RunState::Idle, "{app} must drain its script");
    sys
}

#[test]
fn all_six_services_serve_under_full_indra() {
    for app in ServiceApp::ALL {
        let sys = run_benign(app, SystemConfig::default(), 4, 7);
        let report = sys.report();
        assert_eq!(report.served, 4, "{app}");
        assert_eq!(report.benign_served, 4, "{app}");
        assert!(report.detections.is_empty(), "{app}: no false positives on clean traffic");
        assert!(report.mean_benign_response() > 0.0, "{app}");
        // Responses carry the generated fill pattern.
        let mut sys = sys;
        for resp in sys.take_responses() {
            assert!(!resp.data.is_empty(), "{app}");
            assert_eq!(resp.data[1], 1, "{app}: txbuf fill pattern byte 1");
        }
    }
}

#[test]
fn responses_identical_across_schemes() {
    // The checkpoint scheme must never change functional behaviour.
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for scheme in [
        SchemeKind::None,
        SchemeKind::Delta,
        SchemeKind::UndoLog,
        SchemeKind::VirtualCheckpoint,
        SchemeKind::SoftwareCheckpoint,
    ] {
        let cfg = SystemConfig { scheme, ..SystemConfig::default() };
        let mut sys = run_benign(ServiceApp::Bind, cfg, 5, 11);
        let data: Vec<Vec<u8>> = sys.take_responses().into_iter().map(|r| r.data).collect();
        match &reference {
            None => reference = Some(data),
            Some(r) => assert_eq!(r, &data, "{scheme:?} changed observable behaviour"),
        }
    }
}

#[test]
fn tiny_fifo_is_slower_but_correct() {
    let mk = |entries| {
        let mut cfg = SystemConfig::default();
        cfg.machine.fifo_entries = entries;
        run_benign(ServiceApp::Httpd, cfg, 4, 3)
    };
    let small = mk(4);
    let large = mk(64);
    assert_eq!(small.report().served, 4);
    assert_eq!(large.report().served, 4);
    assert!(
        small.service_cycles() > large.service_cycles(),
        "4-entry FIFO must cost cycles: {} vs {}",
        small.service_cycles(),
        large.service_cycles()
    );
    assert!(small.machine().fifo().stats().full_stalls > 0);
}

#[test]
fn disabled_cam_sends_every_code_origin_check() {
    let mk = |entries| {
        let mut cfg = SystemConfig::default();
        cfg.machine.cam_entries = entries;
        run_benign(ServiceApp::Ftpd, cfg, 3, 9)
    };
    let with_cam = mk(32);
    let without = mk(0);
    let sent_with = with_cam.monitor().stats().code_origin_checks;
    let sent_without = without.monitor().stats().code_origin_checks;
    assert!(
        sent_without > sent_with * 5,
        "CAM must filter the bulk of checks: {sent_with} vs {sent_without}"
    );
}

#[test]
fn symmetric_mode_runs_without_monitoring() {
    // Reconfigurability (§2.3.4): the same machine booted symmetric runs
    // the service with no monitoring and no watchdog insulation.
    let image = build_app_scaled(ServiceApp::Httpd, SCALE);
    let mut machine = indra::sim::Machine::new(MachineConfig::symmetric(2));
    machine.boot_symmetric();
    let mut os = indra::os::Os::new();
    let pid = os.spawn_service(&mut machine, 1, &image).unwrap();
    os.push_request(pid, benign_request(0, 4), false);

    let mut served = 0;
    for _ in 0..60_000_000u64 {
        match machine.step_core_simple(1) {
            indra::sim::CoreStep::Executed => {}
            indra::sim::CoreStep::Syscall { code } => {
                let effect = os.handle_syscall(&mut machine, 1, code);
                if matches!(effect, indra::os::SyscallEffect::ResponseSent { .. }) {
                    served += 1;
                }
                if matches!(effect, indra::os::SyscallEffect::BlockedOnRecv { .. })
                    && os.try_deliver(&mut machine, pid).is_none()
                {
                    break;
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(served, 1);
    assert_eq!(machine.fifo().stats().pushes, 0, "no trace in symmetric mode");
}

#[test]
fn backup_memory_overhead_is_bounded() {
    // §3.3.1: "INDRA allocates delta backup pages on demand... the overall
    // overhead is small" — backup frames must track the touched working
    // set, not total memory.
    let sys = run_benign(ServiceApp::Sendmail, SystemConfig::default(), 4, 21);
    let live = sys.scheme().live_backup_frames();
    // The scaled sendmail touches a handful of pages per request.
    assert!(live > 0, "backup pages were allocated on demand");
    assert!(live < 200, "backup pool stays proportional to the working set: {live}");
}

#[test]
fn availability_report_from_real_run() {
    use indra::workloads::{attack_request, Attack, UNMAPPED_ADDR};
    let image = build_app_scaled(ServiceApp::Httpd, SCALE);
    let mut sys = IndraSystem::new(SystemConfig::default());
    sys.deploy(&image).unwrap();
    sys.push_request(benign_request(0, 1), false);
    sys.push_request(attack_request(Attack::WildWrite { addr: UNMAPPED_ADDR }, &image), true);
    sys.push_request(benign_request(1, 2), false);
    let state = sys.run(400_000_000);
    assert_ne!(state, RunState::BudgetExhausted);

    let a = AvailabilityReport::from_run(sys.report(), 2);
    assert_eq!(a.benign_served, 2);
    assert_eq!(a.benign_lost, 0);
    assert_eq!(a.recoveries, 1);
    assert_eq!(a.micro_recoveries, 1);
    assert!((a.benign_service_ratio - 1.0).abs() < 1e-12);
    assert!(
        a.mean_cycles_to_next_service > 0.0,
        "the outage between detection and next response is visible"
    );
}

#[test]
fn gts_advances_once_per_request() {
    let sys = run_benign(ServiceApp::Bind, SystemConfig::default(), 5, 2);
    // 5 measured requests; the GTS also ticks for warmupless deploys.
    let monitor_events = sys.monitor().stats().events;
    assert!(monitor_events > 0);
    assert_eq!(sys.report().served, 5);
}
