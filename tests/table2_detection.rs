//! Table 2 as an executable artifact: each inspection mechanism, enabled
//! alone, detects exactly its exploit class.

use indra::core::{
    FailureCause, IndraSystem, MonitorConfig, RunState, SystemConfig, ViolationKind,
};
use indra::workloads::{
    attack_request, benign_request, build_app_scaled, Attack, ServiceApp, UNMAPPED_ADDR,
};

const SCALE: u32 = 20;

fn policy_call_return() -> MonitorConfig {
    MonitorConfig {
        check_code_origin: false,
        check_control_transfer: false,
        ..MonitorConfig::default()
    }
}

fn policy_code_origin() -> MonitorConfig {
    MonitorConfig {
        check_call_return: false,
        check_control_transfer: false,
        ..MonitorConfig::default()
    }
}

fn policy_control_transfer() -> MonitorConfig {
    MonitorConfig { check_call_return: false, check_code_origin: false, ..MonitorConfig::default() }
}

/// Runs `attack` under `policy`; returns the violation kinds raised
/// against the malicious request.
fn detections(policy: MonitorConfig, attack: Attack) -> Vec<ViolationKind> {
    let image = build_app_scaled(ServiceApp::Httpd, SCALE);
    let cfg = SystemConfig { monitor: policy, ..SystemConfig::default() };
    let mut sys = IndraSystem::new(cfg);
    sys.deploy(&image).unwrap();
    sys.push_request(benign_request(0, 5), false);
    sys.push_request(attack_request(attack, &image), true);
    sys.push_request(benign_request(1, 6), false);
    let state = sys.run(400_000_000);
    assert_ne!(state, RunState::BudgetExhausted);
    sys.report()
        .detections
        .iter()
        .filter(|d| d.was_malicious)
        .filter_map(|d| match d.cause {
            FailureCause::Violation(k) => Some(k),
            _ => None,
        })
        .collect()
}

fn smash() -> Attack {
    let image = build_app_scaled(ServiceApp::Httpd, SCALE);
    Attack::StackSmash { target: image.addr_of("handler_0").unwrap() + 8 }
}

#[test]
fn call_return_inspection_catches_stack_smash() {
    let kinds = detections(policy_call_return(), smash());
    assert_eq!(kinds, vec![ViolationKind::ReturnMismatch]);
}

#[test]
fn code_origin_inspection_catches_injected_code() {
    let kinds = detections(policy_code_origin(), Attack::InjectedHandler);
    assert_eq!(kinds, vec![ViolationKind::CodeInjection]);
}

#[test]
fn control_transfer_inspection_catches_fn_pointer_overwrite() {
    let kinds =
        detections(policy_control_transfer(), Attack::HandlerHijack { target: UNMAPPED_ADDR });
    assert_eq!(kinds, vec![ViolationKind::InvalidIndirectTarget]);
}

#[test]
fn off_diagonal_cells_do_not_fire_their_violation() {
    // Code-origin inspection alone says nothing about a smash to valid
    // code; control-transfer inspection alone says nothing about a
    // smashed *return* (returns are not indirect-call targets).
    let kinds = detections(policy_code_origin(), smash());
    assert!(
        !kinds.contains(&ViolationKind::CodeInjection),
        "smashed return to real code is not a code-origin violation"
    );
    let kinds = detections(policy_call_return(), Attack::HandlerHijack { target: UNMAPPED_ADDR });
    assert!(
        !kinds.contains(&ViolationKind::ReturnMismatch),
        "a hijacked dispatch is not a return mismatch"
    );
}

#[test]
fn full_policy_catches_everything() {
    for attack in [
        smash(),
        Attack::CodeInjection,
        Attack::InjectedHandler,
        Attack::HandlerHijack { target: UNMAPPED_ADDR },
    ] {
        let kinds = detections(MonitorConfig::default(), attack);
        assert!(!kinds.is_empty(), "{attack:?} must be detected under the full policy");
    }
}
