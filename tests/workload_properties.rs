//! Property tests over the workload generator: *any* spec within the
//! generator's envelope must produce a valid image that boots, serves
//! benign requests without tripping the monitor, and still contains the
//! documented vulnerabilities (the stack smash must work against every
//! generated service).

use indra::core::{IndraSystem, RunState, SystemConfig};
use indra::rng::{forall, Rng};
use indra::workloads::{attack_request, benign_request, build_service, Attack, WorkloadSpec};

fn gen_spec(rng: &mut Rng) -> WorkloadSpec {
    WorkloadSpec {
        name: "prop".to_owned(),
        segments: rng.range_u32(20, 200),
        block_insns: rng.range_u32(30, 150),
        hot_blocks: 8,
        cold_block_insns: 40,
        cold_blocks: 20,
        far_blocks: 66,
        burst_every: 16,
        burst_calls: 4,
        cold_every: rng.range_u32(2, 30),
        pages_touched: rng.range_u32(2, 12),
        lines_per_page: rng.range_u32(1, 20),
        writes_per_line: rng.range_u32(1, 9),
        resp_len: rng.range_u32(16, 512),
        file_writes: rng.range_u32(0, 4),
    }
}

// Full-system runs are heavy; a modest case count still covers the
// envelope well thanks to the wide generator ranges.

#[test]
fn any_spec_builds_and_serves() {
    forall("any_spec_builds_and_serves", 12, |rng| {
        let spec = gen_spec(rng);
        let image = build_service(&spec);
        assert_eq!(image.validate(), Ok(()));
        for sym in ["rxbuf", "txbuf", "reqcopy", "handlers", "workset", "parse", "ingest"] {
            assert!(image.addr_of(sym).is_some(), "missing {sym}");
        }

        let mut sys = IndraSystem::new(SystemConfig::default());
        sys.deploy(&image).unwrap();
        for i in 0..2u8 {
            sys.push_request(benign_request(i, 0x11 + i), false);
        }
        let state = sys.run(300_000_000);
        assert_eq!(state, RunState::Idle);
        assert_eq!(sys.report().benign_served, 2);
        assert!(
            sys.report().detections.is_empty(),
            "benign traffic must not trip the monitor: {:?}",
            sys.report().detections
        );
        // Responses carry the documented fill pattern at the right length.
        let responses = sys.take_responses();
        assert_eq!(responses.len(), 2);
        for r in &responses {
            assert_eq!(r.data.len(), spec.resp_len as usize);
        }
    });
}

#[test]
fn stack_smash_works_against_any_spec() {
    forall("stack_smash_works_against_any_spec", 12, |rng| {
        let spec = gen_spec(rng);
        let image = build_service(&spec);
        let target = image.addr_of("handler_0").unwrap() + 8;
        let mut sys = IndraSystem::new(SystemConfig::default());
        sys.deploy(&image).unwrap();
        sys.push_request(benign_request(0, 3), false);
        sys.push_request(attack_request(Attack::StackSmash { target }, &image), true);
        sys.push_request(benign_request(1, 4), false);
        let state = sys.run(300_000_000);
        assert_ne!(state, RunState::BudgetExhausted);
        assert_eq!(
            sys.report().true_detections(),
            1,
            "the vulnerability must exist in every build"
        );
        assert_eq!(sys.report().benign_served, 2, "and recovery must work in every build");
    });
}
