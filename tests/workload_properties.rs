//! Property tests over the workload generator: *any* spec within the
//! generator's envelope must produce a valid image that boots, serves
//! benign requests without tripping the monitor, and still contains the
//! documented vulnerabilities (the stack smash must work against every
//! generated service).

use proptest::prelude::*;

use indra::core::{IndraSystem, RunState, SystemConfig};
use indra::workloads::{attack_request, benign_request, build_service, Attack, WorkloadSpec};

fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (
        20u32..200,   // segments
        30u32..150,   // block_insns
        2u32..30,     // cold_every
        2u32..12,     // pages_touched
        1u32..20,     // lines_per_page
        1u32..9,      // writes_per_line
        16u32..512,   // resp_len
        0u32..4,      // file_writes
    )
        .prop_map(
            |(segments, block_insns, cold_every, pages, lines, writes, resp, fw)| WorkloadSpec {
                name: "prop".to_owned(),
                segments,
                block_insns,
                hot_blocks: 8,
                cold_block_insns: 40,
                cold_blocks: 20,
                far_blocks: 66,
                burst_every: 16,
                burst_calls: 4,
                cold_every,
                pages_touched: pages,
                lines_per_page: lines,
                writes_per_line: writes,
                resp_len: resp,
                file_writes: fw,
            },
        )
}

proptest! {
    // Full-system runs are heavy; a modest case count still covers the
    // envelope well thanks to the wide strategy.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_spec_builds_and_serves(spec in spec_strategy()) {
        let image = build_service(&spec);
        prop_assert_eq!(image.validate(), Ok(()));
        for sym in ["rxbuf", "txbuf", "reqcopy", "handlers", "workset", "parse", "ingest"] {
            prop_assert!(image.addr_of(sym).is_some(), "missing {}", sym);
        }

        let mut sys = IndraSystem::new(SystemConfig::default());
        sys.deploy(&image).unwrap();
        for i in 0..2u8 {
            sys.push_request(benign_request(i, 0x11 + i), false);
        }
        let state = sys.run(300_000_000);
        prop_assert_eq!(state, RunState::Idle);
        prop_assert_eq!(sys.report().benign_served, 2);
        prop_assert!(
            sys.report().detections.is_empty(),
            "benign traffic must not trip the monitor: {:?}",
            sys.report().detections
        );
        // Responses carry the documented fill pattern at the right length.
        let responses = sys.take_responses();
        prop_assert_eq!(responses.len(), 2);
        for r in &responses {
            prop_assert_eq!(r.data.len(), spec.resp_len as usize);
        }
    }

    #[test]
    fn stack_smash_works_against_any_spec(spec in spec_strategy()) {
        let image = build_service(&spec);
        let target = image.addr_of("handler_0").unwrap() + 8;
        let mut sys = IndraSystem::new(SystemConfig::default());
        sys.deploy(&image).unwrap();
        sys.push_request(benign_request(0, 3), false);
        sys.push_request(attack_request(Attack::StackSmash { target }, &image), true);
        sys.push_request(benign_request(1, 4), false);
        let state = sys.run(300_000_000);
        prop_assert_ne!(state, RunState::BudgetExhausted);
        prop_assert_eq!(sys.report().true_detections(), 1, "the vulnerability must exist in every build");
        prop_assert_eq!(sys.report().benign_served, 2, "and recovery must work in every build");
    }
}
